//! An in-process CLASH cluster: servers over a Chord ring, with the full
//! message flow of §5 and per-message accounting.
//!
//! The cluster plays three roles:
//!
//! 1. **Protocol harness** — it moves `ACCEPT_OBJECT`, `ACCEPT_KEYGROUP`,
//!    `RELEASE_KEYGROUP` and `LOAD_REPORT` messages between
//!    [`ClashServer`]s, routing through the simulated Chord ring and
//!    counting every message and hop ([`MessageStats`]). Every message is
//!    charged virtual time through a [`clash_transport::Transport`]
//!    (hop-by-hop for routed probes) into [`LatencyMetrics`]; a lossy or
//!    partitioned transport makes deliveries time out or fail, which the
//!    protocol paths survive by deferring work (see the per-method docs).
//! 2. **Data plane** — it tracks which streaming sources and continuous
//!    queries currently sit in which key group (the per-group *ledgers*),
//!    so splits and merges repartition load exactly.
//! 3. **Oracle** — it maintains the global map of active groups
//!    ([`ClashCluster::global_cover`]), which the tests use to verify the
//!    protocol's invariants (the active groups always partition the key
//!    space; every lookup lands on the true owner).
//!
//! The full-scale experiment driver (`clash-sim`) wraps this type with
//! simulated time, workload generators and metric recording.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use clash_chord::id::ChordId;
use clash_chord::net::{LookupResult, SimNet};
use clash_chord::snapshot::RouteSnapshot;
use clash_keyspace::cover::{PrefixCover, PrefixMap};
use clash_keyspace::hash::{KeyHasher, SplitMixHasher};
use clash_keyspace::key::Key;
use clash_keyspace::prefix::Prefix;
use clash_obs::{
    CheckPhase, NullProfiler, NullSink, PhaseProfile, PhaseProfiler, Telemetry, TraceEvent,
    TraceEventKind, TraceSink,
};
use clash_simkernel::merge::MergeQueue;
use clash_simkernel::rng::DetRng;
use clash_simkernel::time::{SimDuration, SimTime};
use clash_transport::{
    Delivery, InstantTransport, LinkPolicy, MessageClass, SendSpec, Transport, TransportStats,
};

use crate::arena::ServerArena;
use crate::client::{DepthSearch, SearchOutcome};
use crate::config::ClashConfig;
use crate::error::ClashError;
use crate::latency::{ms, LatencyMetrics};
use crate::load::{GroupLoad, LoadLevel};
use crate::messages::ReleaseResponse;
use crate::replication::ReplicaRecord;
use crate::server::ClashServer;
use crate::shardset::ArcShardedSet;
use crate::table::TableEntry;
use crate::ServerId;

/// Where an object (source or query) was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The server owning the object's key group.
    pub server: ServerId,
    /// The key group.
    pub group: Prefix,
    /// The group's depth (the `d_c` the client discovered).
    pub depth: u32,
    /// Probes the depth search needed (1 for the fixed-depth baseline).
    pub probes: u32,
}

/// Message and action counters for the whole cluster (the Figure 5
/// accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Depth-search probes issued.
    pub probes: u64,
    /// Messages spent on probes: DHT routing hops plus one response each.
    pub probe_messages: u64,
    /// Completed locate operations.
    pub locates: u64,
    /// Messages spent placing right children (routing hops +
    /// `ACCEPT_KEYGROUP`).
    pub split_messages: u64,
    /// Messages spent on consolidation (`RELEASE_KEYGROUP` + response).
    pub merge_messages: u64,
    /// Remote leaf-to-parent load reports.
    pub report_messages: u64,
    /// State-transfer messages (one per migrated query object).
    pub state_transfer_messages: u64,
    /// Client redirect notifications after splits/merges (one per
    /// affected source).
    pub redirect_messages: u64,
    /// Splits performed.
    pub splits: u64,
    /// Merges performed.
    pub merges: u64,
    /// `ACCEPT_KEYGROUP` placements that landed on a *remote* server —
    /// one per completed split whose right child left the splitting
    /// server. Self-mapped splits send no `ACCEPT_KEYGROUP`.
    pub accept_keygroups: u64,
    /// Self-mapped split retries: the right child mapped back to the
    /// splitting server, which kept it and split again (§5's "another
    /// randomized attempt"). No `ACCEPT_KEYGROUP` is sent for these.
    pub self_mapped_retries: u64,
    /// Messages spent on live membership: join lookups and finger
    /// seeding, join/leave announcements, handoff `ACCEPT_KEYGROUP`s
    /// carrying full tree state, and pointer re-point notifications.
    pub handoff_messages: u64,
    /// Servers that joined the running cluster.
    pub joins: u64,
    /// Servers that left gracefully (drained).
    pub leaves: u64,
    /// Successor-list replication traffic: `REPLICATE_KEYGROUP` seeds and
    /// invalidations, `ACK_REPLICA` responses, and the per-group state
    /// fetch a crash recovery pays to promote a replica. Zero when the
    /// replication factor is 0.
    pub replication_messages: u64,
}

impl MessageStats {
    /// All control-plane messages (everything except state transfer) —
    /// Figure 5's case (A). This is the *conservative* accounting: each
    /// depth probe and `ACCEPT_KEYGROUP` placement is charged its full
    /// O(log S) DHT routing cost.
    pub fn control_messages(&self) -> u64 {
        self.probe_messages
            + self.split_messages
            + self.merge_messages
            + self.report_messages
            + self.redirect_messages
            + self.handoff_messages
            + self.replication_messages
    }

    /// Control messages counting only CLASH-protocol exchanges (request +
    /// response per probe, one `ACCEPT_KEYGROUP` per *remote* placement,
    /// reports, releases, redirects, membership handoffs) — treating DHT
    /// routing as substrate cost the way the paper's Figure 5 most
    /// plausibly does. Self-mapped split retries send no
    /// `ACCEPT_KEYGROUP` at all, so they are deliberately *not* charged
    /// here (they used to be, via `splits`, overcounting Figure 5).
    pub fn protocol_control_messages(&self) -> u64 {
        2 * self.probes
            + self.accept_keygroups
            + self.merge_messages
            + self.report_messages
            + self.redirect_messages
            + self.handoff_messages
            + self.replication_messages
    }

    /// All messages including state transfer — Figure 5's case (B).
    pub fn total_messages(&self) -> u64 {
        self.control_messages() + self.state_transfer_messages
    }
}

/// One split performed during a load check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitRecord {
    /// The server that shed load.
    pub server: ServerId,
    /// The group that was split.
    pub group: Prefix,
    /// The server that accepted the right child.
    pub right_child_server: ServerId,
}

/// Outcome of a server failure and recovery ([`ClashCluster::fail_server`]
/// / [`ClashCluster::fail_servers`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureReport {
    /// The (first) server that crashed.
    pub failed: ServerId,
    /// How many servers crashed in this event (1 for a single crash,
    /// more for a correlated burst).
    pub servers_failed: usize,
    /// Active key groups re-homed onto ring successors (recovered plus
    /// re-rooted-empty, so the active cover stays a partition).
    pub groups_reassigned: usize,
    /// Groups recovered with their full ledger state — from the oracle
    /// when the replication factor is 0 (the historical crutch), from a
    /// promoted successor replica otherwise.
    pub groups_recovered: usize,
    /// Groups whose owner *and* every live replica died (or whose state
    /// drifted away behind a partition): re-rooted empty, with their
    /// attached sources and queries truthfully reported lost below.
    /// Always 0 when the replication factor is 0.
    pub groups_lost: usize,
    /// Groups whose replicas all sit behind an active network partition:
    /// recovery is deferred (the group leaves the active cover) and
    /// retried at each load check until the partition heals.
    pub groups_deferred: usize,
    /// Stream sources lost with unrecoverable groups (their clients must
    /// re-attach from scratch).
    pub sources_lost: usize,
    /// Continuous queries lost with unrecoverable groups.
    pub queries_lost: usize,
    /// Surviving entries whose parent pointer died and became roots.
    pub orphaned_parents: usize,
    /// Surviving split entries whose right-child pointer was re-pointed.
    pub repaired_right_children: usize,
}

/// Outcome of a live server join ([`ClashCluster::join_server`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinReport {
    /// The server that joined.
    pub joined: ServerId,
    /// Active key groups handed off to the new server.
    pub groups_received: usize,
    /// Total table entries migrated, including interior (split) entries
    /// that share their hash with a migrated left-child spine.
    pub entries_received: usize,
    /// Parent pointers cluster-wide re-pointed at the new server.
    pub parents_repointed: usize,
    /// Right-child pointers cluster-wide re-pointed at the new server.
    pub right_children_repointed: usize,
    /// Maintenance rounds until the ring re-converged.
    pub stabilization_rounds: usize,
}

/// Outcome of a graceful drain ([`ClashCluster::leave_server`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaveReport {
    /// The server that departed.
    pub left: ServerId,
    /// Active key groups transferred to the ring successor.
    pub groups_transferred: usize,
    /// Total table entries transferred (active and interior — the whole
    /// split tree survives, unlike crash recovery).
    pub entries_transferred: usize,
    /// Parent pointers cluster-wide re-pointed away from the leaver.
    pub parents_repointed: usize,
    /// Right-child pointers cluster-wide re-pointed away from the leaver.
    pub right_children_repointed: usize,
    /// Maintenance rounds until the ring re-converged.
    pub stabilization_rounds: usize,
}

/// A crash recovery deferred behind a partition: where the surviving
/// replicas were seeded from, and whether a single crash stranded it.
#[derive(Debug, Clone, Copy)]
struct PendingRecovery {
    old_owner: ServerId,
    single_crash: bool,
    /// Load checks this entry has stayed blocked since it was deferred
    /// (0 = never retried yet). Feeds the
    /// `recovery.deferred_max_wait_checks` telemetry counter.
    waited_checks: u64,
}

/// Internal tally of one entry-migration batch.
struct MigrationTally {
    active_groups: usize,
    entries: usize,
    parents_repointed: usize,
    right_children_repointed: usize,
}

/// Outcome of a distributed range query ([`ClashCluster::range_query`]).
#[derive(Debug, Clone)]
pub struct RangeQueryResult {
    /// The groups visited, with their owners, in key order.
    pub groups: Vec<(Prefix, ServerId)>,
    /// Number of distinct servers touched — the §7 clustering metric.
    pub distinct_servers: usize,
    /// Depth-search probes spent.
    pub probes: u32,
    /// Control messages spent (hop-inclusive).
    pub messages: u64,
}

/// One merge performed during a load check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeRecord {
    /// The server that consolidated.
    pub server: ServerId,
    /// The parent group that became active again.
    pub parent: Prefix,
}

/// Outcome of one cluster-wide load check.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadCheckReport {
    /// Splits performed, in order.
    pub splits: Vec<SplitRecord>,
    /// Merges performed, in order.
    pub merges: Vec<MergeRecord>,
    /// Merge attempts refused by the child (stale report).
    pub refusals: u64,
    /// Partition-deferred crash recoveries completed this check (the
    /// replicas became reachable again and were promoted).
    pub recoveries_completed: u64,
    /// Deferred recoveries abandoned this check because every replica
    /// holder has since died: the groups were re-rooted empty.
    pub recoveries_lost: u64,
    /// Subset of [`LoadCheckReport::recoveries_lost`] whose originating
    /// crash was a *single*-server failure (availability experiments pin
    /// this at 0 for any replication factor ≥ 1).
    pub recoveries_lost_single: u64,
    /// Sources dropped while resolving deferred recoveries this check
    /// (stranded by an abandoned group, or reconciled away because a
    /// partition starved the promoted replica's write-through).
    pub recovery_sources_lost: u64,
    /// Queries dropped while resolving deferred recoveries this check.
    pub recovery_queries_lost: u64,
}

/// Per-group data-plane state. The member lists live behind `Arc`s so
/// replica payloads are O(1) snapshots: seeding `r` holders shares one
/// allocation, and a later ledger mutation copies-on-write only if a
/// replica still holds the old snapshot (at `r = 0` the `Arc`s are never
/// shared, so `make_mut` never copies).
#[derive(Debug, Clone, Default)]
struct GroupLedger {
    sources: Arc<Vec<u64>>,
    queries: Arc<Vec<u64>>,
    rate: f64,
}

impl GroupLedger {
    fn load(&self) -> GroupLoad {
        GroupLoad {
            data_rate: self.rate,
            queries: self.queries.len() as u64,
        }
    }
}

#[derive(Debug, Clone)]
struct SourceRec {
    key: Key,
    rate: f64,
    group: Prefix,
}

#[derive(Debug, Clone)]
struct QueryRec {
    key: Key,
    group: Prefix,
}

/// One locate probe planned by the batched client path — everything the
/// charge phase needs to replay the sequential accounting bit-for-bit
/// (see the "sharded batch state" section of [`ClashCluster`]).
#[derive(Debug, Clone, Copy)]
struct PlannedProbe {
    /// Client entry node (the `random_alive` draw, made at plan time so
    /// the cluster RNG advances in exact op order).
    start: ServerId,
    /// Hashed probe target `f(virtual key)`.
    target: u64,
    /// The owner the plan resolved by ground truth. Batch windows only
    /// exist between membership barriers, when the ring is converged, so
    /// the routed owner must agree (debug-asserted at charge time).
    owner: ServerId,
    /// True when this probe completed its locate: the charge phase
    /// counts the locate and observes the op's accumulated latency here.
    /// For the adaptive protocol this is also the accepting probe.
    op_end: bool,
    /// The located key's bits — carried so the charge phase can emit the
    /// flight-recorder probe event in plan order (zero cost otherwise).
    key_bits: u64,
    /// The depth this probe guessed (see `key_bits`).
    depth: u32,
}

/// A planned probe after shard-local routing: the plan plus the routed
/// hop count and per-hop path, ready for in-order charging.
#[derive(Debug)]
struct RoutedProbe {
    plan: PlannedProbe,
    owner: ServerId,
    hops: u32,
    path: Vec<(ChordId, ChordId)>,
}

/// A speculated first-split placement: the right child's target hash
/// plus the pre-routed lookup and routing path it resolved to (see
/// `ClashCluster::split_route_cache`).
type SpeculatedRoute = (u64, LookupResult, Vec<(ServerId, ServerId)>);

/// An in-process CLASH cluster (see the module docs).
pub struct ClashCluster {
    config: ClashConfig,
    hasher: SplitMixHasher,
    net: SimNet,
    servers: ServerArena,
    global_index: PrefixMap<ServerId>,
    ledgers: BTreeMap<Prefix, GroupLedger>,
    sources: BTreeMap<u64, SourceRec>,
    queries: BTreeMap<u64, QueryRec>,
    msgs: MessageStats,
    rng: DetRng,
    /// The message transport: every protocol message is charged virtual
    /// time (and may be refused by a partition) through this. The default
    /// [`InstantTransport`] reproduces direct-call semantics exactly.
    transport: Box<dyn Transport>,
    /// End-to-end per-operation latency recorders.
    latency: LatencyMetrics,
    /// Safety cap on splits per server per load check.
    max_splits_per_check: u32,
    /// Safety cap on merges per server per load check.
    max_merges_per_check: u32,
    /// Crash recoveries deferred behind a network partition: the group
    /// (currently absent from the active cover) mapped to its dead owner
    /// and the kind of crash that stranded it, whose surviving replicas
    /// must become reachable before promotion. Retried at every load
    /// check; always empty without replication.
    pending_recovery: BTreeMap<Prefix, PendingRecovery>,
    /// Deferred-recovery retry attempts since construction: every
    /// per-group attempt of `retry_deferred_recoveries` counts exactly
    /// once, so `retries == retries_blocked + completed + lost` (the
    /// conservation law `tests/replication_faults.rs` pins).
    recovery_retries: u64,
    /// Subset of [`ClashCluster::recovery_retries`] that stayed blocked
    /// behind the partition.
    recovery_retries_blocked: u64,
    /// The longest any `pending_recovery` entry has waited, in load
    /// checks — stuck entries surface here instead of staying silent.
    recovery_deferred_max_wait: u64,
    /// Chaos-only fault hook: when set, merges skip re-seeding the
    /// parent's replica set (see
    /// [`ClashCluster::set_chaos_skip_merge_reseed`]). Never set outside
    /// fault-injection tests.
    chaos_skip_merge_reseed: bool,
    /// True while crash recovery runs — any oracle (`global_index`) read
    /// in that window is counted below. With replication enabled the
    /// replica-promotion path must keep the counter at zero; tests and
    /// the availability experiment enforce it.
    recovery_active: Cell<bool>,
    /// Oracle reads observed during crash recovery (see above).
    oracle_reads_in_recovery: Cell<u64>,
    // ----- dirty-tracked load-check state --------------------------------
    //
    // The load check used to sweep every server every period. These
    // incrementally-maintained candidate sets make its cost scale with
    // what changed instead: every cluster path that mutates a server's
    // table or load marks it dirty, and `refresh_candidates` folds the
    // dirty set into the three candidate indices using the *same*
    // classification functions the full sweep used — so candidate
    // membership (and therefore every protocol decision) is bit-for-bit
    // identical to a from-scratch scan. `verify_candidate_indices`
    // asserts exactly that in debug builds, and a differential proptest
    // pins it against the full-scan reference mode.
    /// Servers whose load/table state changed since their last
    /// classification. Sharded by ring arc: each arc owns its slice, so
    /// per-arc phases hand worker threads disjoint id sets; iteration
    /// stays globally ascending (the arc function is monotone), so every
    /// walk matches the unsharded `BTreeSet` bit-for-bit.
    dirty_servers: ArcShardedSet,
    /// Servers currently classified overloaded (split candidates).
    overloaded: ArcShardedSet,
    /// Servers currently underloaded *and* holding at least one split
    /// (inactive) entry — the only servers that can possibly merge.
    mergeable: ArcShardedSet,
    /// Servers owing at least one load report.
    reporters: ArcShardedSet,
    /// Groups whose replica placement needs (re-)ensuring: payload
    /// under-replicated after a partition skip, or holders dropped by a
    /// failed write-through. Steady-state groups whose placement is
    /// complete are never touched by `sync_replicas`.
    replica_dirty: BTreeSet<Prefix>,
    /// Membership changed (join/leave/crash/deferred-recovery retry):
    /// the next `sync_replicas` runs the full lease-expiry + placement
    /// sweep instead of the dirty-group fast path.
    replica_full_sync: bool,
    /// Reference mode for differential tests: every load check marks all
    /// servers dirty and full-syncs replicas, reproducing the historical
    /// full-scan semantics from scratch each period.
    full_scan_checks: bool,
    /// `CLASH_VERIFY_EVERY`: run the debug-build consistency sweep on
    /// every Nth `debug_verify` call (default 1 = every call; 0 = never).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    verify_every: u32,
    /// Calls remaining until the next debug-build consistency sweep.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    verify_countdown: Cell<u32>,
    /// Reused scratch for the report-delivery batch.
    deliver_scratch: Vec<(ServerId, ServerId, Prefix, GroupLoad, bool, bool)>,
    /// Reused scratch for full-sweep id snapshots.
    ids_scratch: Vec<u64>,
    // ----- sharded batch state -------------------------------------------
    //
    // With `config.shards > 0` the client locate path splits into three
    // phases. **Plan** (sequential, at the op): draw the entry node,
    // resolve the probe's owner by ground truth (legal because batch
    // windows only exist between membership barriers, when routing and
    // ground truth agree), run the depth search against live server
    // tables, and queue a `PlannedProbe`; ledger mutations stay
    // synchronous, group-load pushes are coalesced into `batch_touched`.
    // **Shard** (pure, parallel when shards > 1): partition the queued
    // probes by target ring arc, deliberately scramble each lane's local
    // order with a labelled substream (adversarial proof that worker
    // scheduling cannot matter), and resolve each probe's DHT route
    // against a frozen `RouteSnapshot`. **Charge** (sequential, in plan
    // order via the deterministic merge queue): replay hop stats,
    // per-link transport costs, message counters and latency
    // observations exactly as the unbatched path interleaves them.
    // `flush_batch` runs at every barrier; results are bit-for-bit
    // identical for every shard count, including 0 (sequential) —
    // pinned by `tests/shard_equivalence.rs` and the
    // `sharded_batching_matches_sequential` proptest.
    /// Probes planned but not yet routed/charged.
    batch_probes: Vec<PlannedProbe>,
    /// Groups with a deferred (coalesced) load push.
    batch_touched: BTreeSet<Prefix>,
    /// Monotone flush counter salting the per-shard jitter substreams.
    flush_seq: u64,
    /// Frozen routing state for the current batch window; dropped by
    /// every ring-membership mutation, rebuilt lazily at the next flush.
    route_snapshot: Option<Arc<RouteSnapshot>>,
    /// Speculative first-split placements, keyed by splitter id: the
    /// right child's target hash plus its pre-routed lookup and path,
    /// resolved per ring arc on scope workers against the frozen
    /// snapshot at the start of the split phase. `try_split` consults
    /// this once per candidate and falls back to live routing whenever
    /// the candidate's hottest group changed since speculation (the
    /// stored hash no longer matches) — so a hit is, provably, the
    /// exact route the live call would have produced.
    split_route_cache: BTreeMap<u64, SpeculatedRoute>,
    /// Debug builds: how many route phases passed the zero-cluster-RNG-draw
    /// cross-check (the runtime mirror of the clash-lint static rules).
    #[cfg(debug_assertions)]
    route_draw_checks: u64,
    // ----- observability -------------------------------------------------
    //
    // The flight recorder and profiler are strictly passive: events are
    // pre-stamped with the driver-advanced virtual clock, recording never
    // draws RNG or reads a wall clock (the one clock reader lives in
    // `clash-obs`, behind the `PhaseProfiler` trait), and nothing here
    // feeds back into protocol decisions — `tests/trace_equivalence.rs`
    // pins bit-for-bit identical fingerprints with tracing on and off.
    /// Where emitted `TraceEvent`s go (`NullSink` by default).
    trace: Box<dyn TraceSink>,
    /// Cached `trace.enabled()`: emit sites test this bool and skip
    /// event construction entirely when tracing is off.
    trace_on: bool,
    /// Monotone event sequence number (orders same-instant events).
    trace_seq: u64,
    /// Load checks run since construction (the trace ordinal).
    load_checks_run: u64,
    /// Virtual "now" for event stamps, advanced by the driver before it
    /// dispatches each simulation event; zero in cluster-only tests.
    sim_now: SimTime,
    /// Per-phase load-check/flush profiler (`NullProfiler` by default).
    profiler: Box<dyn PhaseProfiler>,
    /// True once a real profiler is installed.
    profile_on: bool,
}

impl ClashCluster {
    /// Builds a cluster of `n_servers` over a stabilized Chord ring and
    /// bootstraps the initial uniform key groups onto their `Map()`
    /// owners.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::InvalidConfig`] for inconsistent
    /// configurations.
    pub fn new(config: ClashConfig, n_servers: usize, seed: u64) -> Result<Self, ClashError> {
        Self::with_transport(config, n_servers, seed, Box::new(InstantTransport::new()))
    }

    /// [`ClashCluster::new`] over an explicit message transport (latency,
    /// loss and partition models live in `clash-transport`). The transport
    /// must derive its randomness from its own seed: the cluster never
    /// shares its protocol RNG with the transport, so swapping transports
    /// never perturbs protocol-level draws.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::InvalidConfig`] for inconsistent
    /// configurations.
    pub fn with_transport(
        config: ClashConfig,
        n_servers: usize,
        seed: u64,
        mut transport: Box<dyn Transport>,
    ) -> Result<Self, ClashError> {
        config.validate()?;
        // The transport's batch path may fan out over this many workers;
        // its contract pins the result bit-for-bit to the worker count 1
        // case, so this is purely an execution hint.
        transport.set_batch_workers(config.shards.max(1) as usize);
        if n_servers == 0 {
            return Err(ClashError::InvalidConfig {
                reason: "cluster needs at least one server",
            });
        }
        let root_rng = DetRng::new(seed);
        let mut ring_rng = root_rng.substream("ring");
        let mut net = SimNet::with_random_nodes(config.hash_space, n_servers, &mut ring_rng);
        // Ground-truth stabilization may partition its table computation
        // over the shard workers — like the batch hint above, results
        // are identical for every value.
        net.set_stabilize_workers(config.shards.max(1) as usize);
        net.build_stable();
        let mut servers = ServerArena::new();
        let arc_count = config.shards.max(1) as usize;
        let bits = config.hash_space.bits();
        let mut dirty_servers = ArcShardedSet::new(arc_count, bits);
        for id in net.node_ids() {
            servers.insert(ClashServer::new(id, config));
            dirty_servers.insert(id.value());
        }
        let verify_every = ClashConfig::verify_every_from_env();
        let mut cluster = ClashCluster {
            config,
            hasher: SplitMixHasher::new(config.hash_space, config.hash_seed),
            net,
            servers,
            global_index: PrefixMap::new(config.key_width),
            ledgers: BTreeMap::new(),
            sources: BTreeMap::new(),
            queries: BTreeMap::new(),
            msgs: MessageStats::default(),
            rng: root_rng.substream("cluster"),
            transport,
            latency: LatencyMetrics::new(),
            max_splits_per_check: 64,
            max_merges_per_check: 64,
            pending_recovery: BTreeMap::new(),
            recovery_retries: 0,
            recovery_retries_blocked: 0,
            recovery_deferred_max_wait: 0,
            chaos_skip_merge_reseed: false,
            recovery_active: Cell::new(false),
            oracle_reads_in_recovery: Cell::new(0),
            dirty_servers,
            overloaded: ArcShardedSet::new(arc_count, bits),
            mergeable: ArcShardedSet::new(arc_count, bits),
            reporters: ArcShardedSet::new(arc_count, bits),
            replica_dirty: BTreeSet::new(),
            replica_full_sync: false,
            full_scan_checks: false,
            verify_every,
            verify_countdown: Cell::new(1),
            deliver_scratch: Vec::new(),
            ids_scratch: Vec::new(),
            batch_probes: Vec::new(),
            batch_touched: BTreeSet::new(),
            flush_seq: 0,
            route_snapshot: None,
            split_route_cache: BTreeMap::new(),
            #[cfg(debug_assertions)]
            route_draw_checks: 0,
            trace: Box::new(NullSink),
            trace_on: false,
            trace_seq: 0,
            load_checks_run: 0,
            sim_now: SimTime::ZERO,
            profiler: Box::new(NullProfiler),
            profile_on: false,
        };
        if cluster.config.splitting_enabled {
            cluster.bootstrap_initial_groups()?;
        }
        Ok(cluster)
    }

    fn bootstrap_initial_groups(&mut self) -> Result<(), ClashError> {
        let depth = self.config.initial_depth;
        let width = self.config.key_width;
        let mut seeded = Vec::new();
        for pattern in 0..(1u64 << depth) {
            let group = Prefix::new(pattern, depth, width)?;
            let owner = self.map_group(group);
            self.servers
                .get_mut(owner.value())
                .expect("owner is a ring member")
                .bootstrap_root(group)?;
            self.mark_dirty(owner.value());
            self.global_index.insert(group, owner);
            self.ledgers.insert(group, GroupLedger::default());
            seeded.push((group, owner));
        }
        for (group, owner) in seeded {
            self.ensure_replicas(group, owner);
        }
        Ok(())
    }

    /// `Map(f(virtual key))` by ground truth (no hop accounting) — the
    /// DHT's own placement function, used for bootstrap, membership
    /// handoffs and crash re-homing (a real deployment would route a
    /// lookup; the destination is identical).
    fn map_group(&self, group: Prefix) -> ServerId {
        let h = self.hasher.hash_key(group.virtual_key());
        self.net.owner_of(h).expect("ring is non-empty")
    }

    /// Every read of the global index funnels through this guard so the
    /// replica-based crash recovery can *prove* it never consults the
    /// oracle: reads while recovery is active are counted, and the
    /// replication tests pin the counter at zero.
    fn count_oracle_read(&self) {
        if self.recovery_active.get() {
            self.oracle_reads_in_recovery
                .set(self.oracle_reads_in_recovery.get() + 1);
        }
    }

    /// The oracle's owner for `group` (counted; see
    /// [`ClashCluster::recovery_oracle_reads`]).
    fn oracle_owner(&self, group: Prefix) -> Option<ServerId> {
        self.count_oracle_read();
        self.global_index.get(group).copied()
    }

    // ----- dirty-tracked candidate indices -------------------------------

    /// Marks a server's classification stale. Every cluster path that
    /// mutates a server's table or load calls this; missing a site is a
    /// bug that `verify_candidate_indices` (debug builds) and the
    /// full-scan differential proptest catch.
    fn mark_dirty(&mut self, sid_value: u64) {
        self.dirty_servers.insert(sid_value);
    }

    /// Drops a departed server from every candidate index.
    fn forget_server(&mut self, sid_value: u64) {
        self.dirty_servers.remove(sid_value);
        self.overloaded.remove(sid_value);
        self.mergeable.remove(sid_value);
        self.reporters.remove(sid_value);
    }

    /// Marks every live server dirty (construction, membership sweeps,
    /// and the full-scan reference mode).
    fn mark_all_dirty(&mut self) {
        let ids: Vec<u64> = self.servers.ids().collect();
        self.dirty_servers.extend(ids);
    }

    /// Folds the dirty set into the candidate indices, using exactly the
    /// classification the historical full sweep applied per server:
    /// [`ClashServer::load_level`] (recomputed from scratch, so float
    /// summation order — and therefore every threshold comparison — is
    /// identical to the pre-optimization code) plus the cheap structural
    /// predicates for merge-ability and report-owing.
    fn refresh_candidates(&mut self) {
        // Below this many dirty servers the classification runs inline:
        // thread spawn costs more than classifying a near-empty set (the
        // steady-state checks reclassify a handful of servers).
        const PAR_REFRESH_MIN: usize = 512;
        if self.dirty_servers.is_empty() {
            return;
        }
        let n_shards = self.config.shards.max(1) as usize;
        if n_shards > 1 && self.dirty_servers.len() >= PAR_REFRESH_MIN {
            self.refresh_candidates_sharded();
            return;
        }
        let dirty = self.dirty_servers.take_all();
        for sid in dirty {
            let verdict = Self::classify(self.servers.get(sid));
            self.apply_classification(sid, verdict);
        }
    }

    /// The pure per-server classification the candidate indices are
    /// maintained by — exactly the predicates the historical full sweep
    /// applied ([`ClashServer::load_level`] recomputed from scratch, so
    /// float summation order and every threshold comparison match the
    /// pre-optimization code). `None` = departed server.
    fn classify(server: Option<&ClashServer>) -> Option<(bool, bool, bool)> {
        server.map(|s| {
            let level = s.load_level();
            (
                level == LoadLevel::Overloaded,
                level == LoadLevel::Underloaded && s.table().has_split_entries(),
                s.owes_reports(),
            )
        })
    }

    /// Folds one classification verdict into the candidate indices.
    fn apply_classification(&mut self, sid: u64, verdict: Option<(bool, bool, bool)>) {
        let (over, merge, owes) = verdict.unwrap_or((false, false, false));
        if over {
            self.overloaded.insert(sid);
        } else {
            self.overloaded.remove(sid);
        }
        if merge {
            self.mergeable.insert(sid);
        } else {
            self.mergeable.remove(sid);
        }
        if owes {
            self.reporters.insert(sid);
        } else {
            self.reporters.remove(sid);
        }
    }

    /// The arc-sharded [`ClashCluster::refresh_candidates`]: each worker
    /// classifies its own arc's dirty servers against the shared arena
    /// (pure reads), the verdicts funnel through the deterministic
    /// [`MergeQueue`] keyed by server id, and the fold applies them on
    /// one thread. Classification is a pure per-server function and the
    /// index updates for distinct ids commute, so the result is
    /// bit-for-bit the sequential path's for every shard count — pinned
    /// by `tests/shard_equivalence.rs` and the candidate-index debug
    /// verifier.
    fn refresh_candidates_sharded(&mut self) {
        let dirty_arcs = self.dirty_servers.take_arcs();
        let servers = &self.servers;
        let mut queue: MergeQueue<u64, Option<(bool, bool, bool)>> =
            MergeQueue::new(dirty_arcs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = dirty_arcs
                .iter()
                .map(|arc_ids| {
                    scope.spawn(move || {
                        arc_ids
                            .iter()
                            .map(|&sid| (sid, Self::classify(servers.get(sid))))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for (arc, handle) in handles.into_iter().enumerate() {
                *queue.lane_mut(arc) = handle.join().expect("classify worker panicked");
            }
        });
        for (sid, verdict) in queue.drain() {
            self.apply_classification(sid, verdict);
        }
    }

    /// Asserts that every *clean* (non-dirty) server's candidate-index
    /// membership matches a from-scratch classification — the invariant
    /// that makes the dirty-tracked load check equivalent to the
    /// historical full sweep. Dirty servers are exempt: their stale
    /// entries are refreshed before the next candidate is picked.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch (a missed `mark_dirty` site).
    pub fn verify_candidate_indices(&self) {
        for server in self.servers.iter() {
            let sid = server.id().value();
            if self.dirty_servers.contains(sid) {
                continue;
            }
            let level = server.load_level();
            assert_eq!(
                self.overloaded.contains(sid),
                level == LoadLevel::Overloaded,
                "stale overloaded-index entry for {sid:#x}"
            );
            let can_merge = level == LoadLevel::Underloaded && server.table().has_split_entries();
            assert_eq!(
                self.mergeable.contains(sid),
                can_merge,
                "stale mergeable-index entry for {sid:#x}"
            );
            assert_eq!(
                self.reporters.contains(sid),
                server.owes_reports(),
                "stale reporter-index entry for {sid:#x}"
            );
        }
        for sid in self
            .overloaded
            .iter()
            .chain(self.mergeable.iter())
            .chain(self.reporters.iter())
        {
            assert!(
                self.servers.contains(sid) || self.dirty_servers.contains(sid),
                "candidate index names departed server {sid:#x}"
            );
        }
    }

    /// Reference mode for differential tests: when enabled, every load
    /// check reclassifies *all* servers and full-syncs every replica
    /// group from scratch — the historical O(cluster) sweep semantics.
    /// The optimized dirty-tracked path must be bit-for-bit identical to
    /// this mode on every seed; `tests/perf_equivalence.rs` and the
    /// `dirty_tracked_load_checks_match_full_scan` proptest pin that.
    pub fn set_full_scan_load_checks(&mut self, on: bool) {
        self.full_scan_checks = on;
    }

    // ----- accessors ---------------------------------------------------

    /// The configuration.
    pub fn config(&self) -> &ClashConfig {
        &self.config
    }

    /// The underlying Chord ring.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Message statistics since the last reset.
    pub fn message_stats(&self) -> MessageStats {
        self.msgs
    }

    /// Resets message statistics (per-measurement-window accounting).
    pub fn reset_message_stats(&mut self) {
        self.msgs = MessageStats::default();
        self.net.reset_stats();
        self.transport.reset_stats();
    }

    /// The transport's delivery counters (retransmissions, unreachable
    /// sends, mean latency).
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// The per-operation latency histograms (virtual milliseconds).
    pub fn latency_metrics(&self) -> &LatencyMetrics {
        &self.latency
    }

    /// True when the cluster runs over the zero-latency instant
    /// transport — every latency observation is identically zero, so
    /// callers can skip percentile bookkeeping entirely.
    pub fn transport_is_instant(&self) -> bool {
        self.transport.is_instant()
    }

    /// Oracle (`global_index`) reads observed while crash recovery was in
    /// progress, cumulative since construction. With
    /// [`crate::config::ClashConfig::replication_factor`] `> 0` the
    /// replica-promotion recovery never touches the oracle, so this stays
    /// 0 — the no-crutch guarantee the replication tests and the
    /// availability experiment pin.
    pub fn recovery_oracle_reads(&self) -> u64 {
        self.oracle_reads_in_recovery.get()
    }

    /// Crash recoveries currently deferred behind a network partition.
    pub fn pending_recoveries(&self) -> usize {
        self.pending_recovery.len()
    }

    /// The groups of every deferred recovery, in key order. Together
    /// with [`ClashCluster::global_cover`] these partition the key space
    /// (the cover∪pending completeness invariant the chaos campaigns
    /// re-check without panicking).
    pub fn pending_recovery_groups(&self) -> Vec<Prefix> {
        self.pending_recovery.keys().copied().collect()
    }

    /// Cumulative deferred-recovery retry counters since construction:
    /// `(retries, retries_blocked)`. Every retry attempt lands in
    /// exactly one of blocked / completed / lost, so
    /// `retries == retries_blocked + recoveries_completed + recoveries_lost`
    /// summed over all load-check reports.
    pub fn recovery_retry_counters(&self) -> (u64, u64) {
        (self.recovery_retries, self.recovery_retries_blocked)
    }

    /// True while the transport is severed into islands.
    pub fn network_is_partitioned(&self) -> bool {
        self.transport.is_partitioned()
    }

    /// Active groups whose replica placement is below the successor-list
    /// target *and* not queued for repair — `(group, live_holders,
    /// desired)`. Transiently-under-replicated groups sit in the
    /// periodic sync's worklist and are excluded; at quiescence (healed
    /// network, no pending recoveries, a completed load check) this is
    /// empty, which the chaos invariant suite checks. A group that shows
    /// up here has silently fallen out of the replication protocol.
    pub fn replica_placement_deficit(&self) -> Vec<(Prefix, usize, usize)> {
        if !self.replication_enabled() {
            return Vec::new();
        }
        let mut deficit = Vec::new();
        for (group, &owner) in self.global_index.iter() {
            if self.replica_dirty.contains(&group) || self.pending_recovery.contains_key(&group) {
                continue;
            }
            let Some(server) = self.servers.get(owner.value()) else {
                continue;
            };
            let desired = self
                .net
                .alive_successors(owner, self.config.replication_factor)
                .len();
            let live = server
                .replica_store()
                .placed(group)
                .iter()
                .filter(|h| self.servers.contains(h.value()))
                .count();
            if live < desired {
                deficit.push((group, live, desired));
            }
        }
        deficit
    }

    /// Chaos-only fault hook: when enabled, merges skip the parent
    /// group's replica re-seed, silently dropping the merged group out
    /// of the replication protocol. Exists so the fault-injection
    /// campaigns can prove they catch a real protocol bug (the
    /// `clash-chaos` injected-bug test); never enable it elsewhere.
    pub fn set_chaos_skip_merge_reseed(&mut self, on: bool) {
        self.chaos_skip_merge_reseed = on;
    }

    // ----- observability -------------------------------------------------

    /// Installs a flight-recorder sink; whatever the previous sink still
    /// buffered is discarded with it.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace_on = sink.enabled();
        self.trace = sink;
    }

    /// Installs a per-phase profiler (the driver wires a wall-clock one;
    /// the cluster itself only names phases and never reads a clock).
    pub fn set_profiler(&mut self, profiler: Box<dyn PhaseProfiler>) {
        self.profile_on = true;
        self.profiler = profiler;
    }

    /// The profiler's accumulated per-phase milliseconds.
    pub fn phase_profile(&self) -> PhaseProfile {
        self.profiler.profile()
    }

    /// Advances the recorder's virtual clock. The driver calls this
    /// before dispatching each simulation event so every trace stamp is
    /// the sim time of the decision, not a wall-clock reading.
    pub fn set_now(&mut self, now: SimTime) {
        self.sim_now = now;
    }

    /// Drains everything the flight recorder buffered, oldest first.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.trace.drain()
    }

    /// Events the bounded ring sink had to shed (0 for other sinks).
    pub fn trace_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// Total protocol RNG draws since construction. Trace collection
    /// must never move this — `tests/trace_equivalence.rs` pins it.
    pub fn rng_draws(&self) -> u64 {
        self.rng.draw_count()
    }

    /// Records one event. Callers guard with `self.trace_on` so the
    /// disabled path never even constructs the event.
    fn emit(&mut self, kind: TraceEventKind) {
        let ev = TraceEvent {
            at: self.sim_now,
            seq: self.trace_seq,
            kind,
        };
        self.trace_seq += 1;
        self.trace.record(ev);
    }

    fn phase_begin(&mut self, phase: CheckPhase) {
        if self.profile_on {
            self.profiler.begin(phase);
        }
    }

    fn phase_end(&mut self, phase: CheckPhase) {
        if self.profile_on {
            self.profiler.end(phase);
        }
    }

    /// On a consistency failure: dump the flight recorder's tail to
    /// stderr so the panic message comes with the decisions that led
    /// there. No-op when tracing is off or nothing is buffered.
    fn dump_trace_tail(&self) {
        // Ask for at most what the sink can actually hold: a ring
        // smaller than the default window used to make the header's
        // "last N" claim overstate the available history.
        const TAIL: usize = 64;
        let want = self.trace.capacity().map_or(TAIL, |cap| cap.min(TAIL));
        let tail = self.trace.tail(want);
        if tail.is_empty() {
            return;
        }
        eprintln!(
            "--- flight recorder: last {} event(s) before failure ({} shed) ---",
            tail.len(),
            self.trace.dropped()
        );
        for ev in &tail {
            eprintln!(
                "  [{:>12} us seq {:>8}] {:?}",
                ev.at.as_micros(),
                ev.seq,
                ev.kind
            );
        }
        eprintln!("--- end flight recorder tail ---");
    }

    /// Exports the cluster's counters and latency distributions into a
    /// unified [`Telemetry`] registry (the driver layers its own
    /// counters on top under a `driver.` prefix).
    pub fn telemetry(&self) -> Telemetry {
        let mut t = Telemetry::new();
        let m = &self.msgs;
        t.counter("messages.probes", m.probes);
        t.counter("messages.probe_messages", m.probe_messages);
        t.counter("messages.locates", m.locates);
        t.counter("messages.split_messages", m.split_messages);
        t.counter("messages.merge_messages", m.merge_messages);
        t.counter("messages.report_messages", m.report_messages);
        t.counter(
            "messages.state_transfer_messages",
            m.state_transfer_messages,
        );
        t.counter("messages.redirect_messages", m.redirect_messages);
        t.counter("messages.splits", m.splits);
        t.counter("messages.merges", m.merges);
        t.counter("messages.accept_keygroups", m.accept_keygroups);
        t.counter("messages.self_mapped_retries", m.self_mapped_retries);
        t.counter("messages.handoff_messages", m.handoff_messages);
        t.counter("messages.joins", m.joins);
        t.counter("messages.leaves", m.leaves);
        t.counter("messages.replication_messages", m.replication_messages);
        t.counter("messages.control_total", m.control_messages());
        t.counter("messages.total", m.total_messages());
        t.gauge("servers.active", self.server_count() as f64);
        t.gauge("recovery.pending", self.pending_recovery.len() as f64);
        t.counter("recovery.retries", self.recovery_retries);
        t.counter("recovery.retries_blocked", self.recovery_retries_blocked);
        t.counter(
            "recovery.deferred_max_wait_checks",
            self.recovery_deferred_max_wait,
        );
        t.counter("recovery.oracle_reads", self.recovery_oracle_reads());
        t.counter("trace.dropped", self.trace.dropped());
        t.counter("rng.draws", self.rng.draw_count());
        let l = &self.latency;
        t.summary("latency.locate_ms", l.locate.summary().snapshot());
        t.summary("latency.report_ms", l.report.summary().snapshot());
        t.summary("latency.split_ms", l.split.summary().snapshot());
        t.summary("latency.merge_ms", l.merge.summary().snapshot());
        t.summary("latency.handoff_ms", l.handoff.summary().snapshot());
        t.summary("latency.replication_ms", l.replication.summary().snapshot());
        t
    }

    /// True if `source_id` is currently attached. Sources die when their
    /// group is lost in an unrecoverable crash, so long-running drivers
    /// check before re-keying a stream.
    pub fn has_source(&self, source_id: u64) -> bool {
        self.sources.contains_key(&source_id)
    }

    /// True if `query_id` is currently attached (see
    /// [`ClashCluster::has_source`]).
    pub fn has_query(&self, query_id: u64) -> bool {
        self.queries.contains_key(&query_id)
    }

    fn replication_enabled(&self) -> bool {
        self.config.replication_factor > 0
    }

    /// Severs the network into islands of servers: protocol messages
    /// between islands fail with [`ClashError::NetworkUnreachable`] (or
    /// are silently lost, for soft-state reports) until
    /// [`ClashCluster::heal_partition`]. No-op on the instant transport.
    pub fn partition_network(&mut self, islands: &[Vec<ServerId>]) {
        // Close the batch window before the cut: batched ops planned on
        // the connected network must be charged at connected-network
        // prices. The transport is connected here, so charging cannot
        // fail.
        self.flush_batch()
            .expect("flush before partition cannot hit a severed link");
        let raw: Vec<Vec<u64>> = islands
            .iter()
            .map(|island| island.iter().map(|id| id.value()).collect())
            .collect();
        self.transport.partition(&raw);
    }

    /// Replaces the transport's link policy for all future messages —
    /// the gray-failure knob: latency/loss degrade (or recover) at
    /// runtime without rebuilding the transport. Existing links keep
    /// their sampled base propagation delay (see
    /// [`Transport::set_policy`]). No-op on the instant transport.
    pub fn set_link_policy(&mut self, policy: LinkPolicy) {
        // Close the batch window first: ops planned under the old policy
        // must be charged at the prices they were planned under. While
        // partitioned the window is empty (batching is inert), so the
        // flush cannot hit a severed link either way.
        self.flush_batch()
            .expect("flush before policy change cannot hit a severed link");
        self.transport.set_policy(policy);
    }

    /// Heals any active network partition.
    pub fn heal_partition(&mut self) {
        // Batching is disabled while partitioned, so the batch is empty
        // here in practice; flushing anyway keeps the invariant local.
        self.flush_batch()
            .expect("flush before heal cannot hit a severed link");
        self.transport.heal();
    }

    /// Charges one routed probe through the transport: every routing hop
    /// of `path` plus the response from `owner` back to `start`. Used by
    /// both locate paths so their latency accounting can never diverge.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::NetworkUnreachable`] on the first severed
    /// hop (any latency already accumulated into `op_latency` stands —
    /// the time was spent before the route hit the cut).
    fn charge_probe_route(
        &mut self,
        start: ChordId,
        owner: ChordId,
        path: Vec<(ChordId, ChordId)>,
        op_latency: &mut SimDuration,
    ) -> Result<(), ClashError> {
        for (from, to) in path {
            if !self.transport_send(from, to, MessageClass::Probe, op_latency) {
                return Err(ClashError::NetworkUnreachable { from, to });
            }
        }
        if !self.transport_send(owner, start, MessageClass::ProbeResponse, op_latency) {
            return Err(ClashError::NetworkUnreachable {
                from: owner,
                to: start,
            });
        }
        Ok(())
    }

    /// Sends one protocol message through the transport, accumulating the
    /// delivered latency into `total`. Returns false (leaving `total`
    /// untouched) when the destination is unreachable.
    fn transport_send(
        &mut self,
        from: ChordId,
        to: ChordId,
        class: MessageClass,
        total: &mut SimDuration,
    ) -> bool {
        match self.transport.send(from.value(), to.value(), class) {
            Delivery::Delivered { latency, .. } => {
                *total += latency;
                true
            }
            Delivery::Unreachable { .. } => false,
        }
    }

    /// All server identifiers.
    pub fn server_ids(&self) -> Vec<ServerId> {
        self.servers.iter().map(ClashServer::id).collect()
    }

    /// A server by identifier.
    pub fn server(&self, id: ServerId) -> Option<&ClashServer> {
        self.servers.get(id.value())
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// `(server, load)` for every server.
    pub fn server_loads(&self) -> Vec<(ServerId, f64)> {
        self.servers
            .iter()
            .map(|s| (s.id(), s.current_load()))
            .collect()
    }

    /// Servers currently holding at least one active group.
    pub fn servers_with_groups(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.table().active_count() > 0)
            .count()
    }

    /// The global set of active groups as a prefix cover (the oracle).
    pub fn global_cover(&self) -> PrefixCover {
        self.count_oracle_read();
        let mut cover = PrefixCover::new(self.config.key_width);
        for p in self.global_index.prefixes() {
            cover.insert(p).expect("global index must be prefix-free");
        }
        cover
    }

    /// The server currently homing `group`, if it is an active group of
    /// the global index. Diagnostic/test accessor — the protocol itself
    /// resolves owners through the DHT, never through this map.
    pub fn group_owner(&self, group: Prefix) -> Option<ServerId> {
        self.global_index.get(group).copied()
    }

    /// Global depth statistics `(min, mean, max)` over active groups.
    pub fn depth_stats(&self) -> Option<(u32, f64, u32)> {
        let mut min = u32::MAX;
        let mut max = 0;
        let mut sum = 0u64;
        let mut n = 0u64;
        for p in self.global_index.prefixes() {
            min = min.min(p.depth());
            max = max.max(p.depth());
            sum += u64::from(p.depth());
            n += 1;
        }
        (n > 0).then(|| (min, sum as f64 / n as f64, max))
    }

    /// Ground-truth owner of a key (oracle; no messages).
    pub fn oracle_locate(&self, key: Key) -> Option<(ServerId, Prefix)> {
        self.count_oracle_read();
        self.global_index
            .longest_prefix_match(key)
            .map(|(p, &s)| (s, p))
    }

    // ----- client operations (§5) ---------------------------------------

    /// Locates the server and depth for `key` using the client protocol:
    /// the modified binary search over `ACCEPT_OBJECT` probes, each routed
    /// through the DHT. For the fixed-depth baseline a single lookup
    /// suffices.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::SearchDiverged`] only on protocol invariant
    /// violations.
    pub fn locate(&mut self, key: Key) -> Result<Placement, ClashError> {
        self.locate_hinted(key, None)
    }

    /// [`ClashCluster::locate`] with a first-guess depth hint (clients
    /// cache the depth from their previous lookup).
    ///
    /// # Errors
    ///
    /// See [`ClashCluster::locate`].
    pub fn locate_hinted(&mut self, key: Key, hint: Option<u32>) -> Result<Placement, ClashError> {
        if !self.config.splitting_enabled {
            return self.locate_fixed_depth(key);
        }
        if self.batching_active() {
            return self.locate_batched(key, hint);
        }
        let width = self.config.key_width.get();
        let mut search = match hint {
            Some(h) => DepthSearch::with_hint(width, h),
            None => DepthSearch::new(width),
        };
        let mut op_latency = SimDuration::ZERO;
        loop {
            let guess = search.next_guess();
            let group_guess = Prefix::of_key(key, guess);
            let h = self.hasher.hash_key(group_guess.virtual_key());
            let start = self.net.random_alive(&mut self.rng);
            let (lookup, path) = self.net.find_successor_path(start, h);
            self.charge_probe_route(start, lookup.owner, path, &mut op_latency)?;
            self.msgs.probes += 1;
            self.msgs.probe_messages += u64::from(lookup.hops) + 1;
            let responder = self
                .servers
                .get_mut(lookup.owner.value())
                .expect("owner is a ring member");
            let response = responder.handle_accept_object(key, guess);
            let outcome = search.record(guess, response)?;
            if self.trace_on {
                self.emit(TraceEventKind::LocateProbe {
                    key: key.bits(),
                    depth: guess,
                    server: lookup.owner.value(),
                    accepted: matches!(outcome, SearchOutcome::Found { .. }),
                    hop: search.probes(),
                });
            }
            match outcome {
                SearchOutcome::Found { depth, .. } => {
                    self.msgs.locates += 1;
                    self.latency.locate.observe(ms(op_latency));
                    return Ok(Placement {
                        server: lookup.owner,
                        group: Prefix::of_key(key, depth),
                        depth,
                        probes: search.probes(),
                    });
                }
                SearchOutcome::Continue { .. } => {}
            }
        }
    }

    /// True while client locates should plan into the batch instead of
    /// routing synchronously. Requires `shards > 0` (opt-in), the
    /// adaptive protocol (the fixed-depth baseline lazily materializes
    /// groups mid-locate, which is inherently sequential), and an
    /// unpartitioned transport (the sequential path aborts an attach
    /// *before* its ledger mutation when a probe hits the cut — a
    /// divergence batching cannot reproduce, so it steps aside).
    fn batching_active(&self) -> bool {
        self.config.shards > 0 && self.config.splitting_enabled && !self.transport.is_partitioned()
    }

    /// The batched locate plan phase: identical control flow and RNG
    /// draws to the synchronous `locate_hinted` loop, but DHT routing
    /// and all message/latency charging are deferred to
    /// [`ClashCluster::flush_batch`]. The depth search itself runs live
    /// against server tables (tables only change at barriers), so the
    /// returned [`Placement`] is exactly the sequential one.
    fn locate_batched(&mut self, key: Key, hint: Option<u32>) -> Result<Placement, ClashError> {
        let width = self.config.key_width.get();
        let mut search = match hint {
            Some(h) => DepthSearch::with_hint(width, h),
            None => DepthSearch::new(width),
        };
        loop {
            let guess = search.next_guess();
            let group_guess = Prefix::of_key(key, guess);
            let h = self.hasher.hash_key(group_guess.virtual_key());
            let start = self.net.random_alive(&mut self.rng);
            let owner = self.net.owner_of(h).expect("ring is non-empty");
            self.batch_probes.push(PlannedProbe {
                start,
                target: h,
                owner,
                op_end: false,
                key_bits: key.bits(),
                depth: guess,
            });
            let responder = self
                .servers
                .get_mut(owner.value())
                .expect("owner is a ring member");
            let response = responder.handle_accept_object(key, guess);
            match search.record(guess, response)? {
                SearchOutcome::Found { depth, .. } => {
                    self.batch_probes
                        .last_mut()
                        .expect("probe queued above")
                        .op_end = true;
                    return Ok(Placement {
                        server: owner,
                        group: Prefix::of_key(key, depth),
                        depth,
                        probes: search.probes(),
                    });
                }
                SearchOutcome::Continue { .. } => {}
            }
        }
    }

    /// Routes and charges every planned probe and pushes every deferred
    /// group-load update. Runs automatically at every barrier (load
    /// check, membership change, partition, driver sample); a no-op when
    /// nothing is batched, so it is always safe to call before reading
    /// message stats, latency metrics or server loads.
    ///
    /// # Errors
    ///
    /// Propagates charging errors; none occur in correct operation
    /// (batch windows never span a partition).
    pub fn flush_batch(&mut self) -> Result<(), ClashError> {
        if !self.batch_probes.is_empty() {
            self.flush_batch_probes()?;
        }
        if !self.batch_touched.is_empty() {
            let touched = std::mem::take(&mut self.batch_touched);
            for group in touched {
                self.push_group_load(group)?;
            }
        }
        Ok(())
    }

    /// Debug builds: how many route phases have passed the
    /// zero-cluster-RNG-draw cross-check. The regression test in this
    /// module uses it to prove the instrumented path actually ran.
    #[cfg(debug_assertions)]
    pub fn route_draw_checks(&self) -> u64 {
        self.route_draw_checks
    }

    /// The shard + charge phases of the batch (see the field docs).
    fn flush_batch_probes(&mut self) -> Result<(), ClashError> {
        // Below this many pending probes a flush routes inline even when
        // N > 1: spawning worker threads costs more than routing a
        // near-empty batch (e.g. the isolated load-check cells flush a
        // couple of probes per period). Purely an execution-strategy
        // switch — lanes, shuffle and merge order are untouched, so the
        // result is bit-for-bit identical either way (the equivalence
        // pins cover batches on both sides of the threshold).
        const PAR_ROUTE_MIN: usize = 64;
        let probes = std::mem::take(&mut self.batch_probes);
        let probe_count = probes.len();
        let n_shards = self.config.shards.max(1) as usize;
        let this_flush = self.flush_seq;
        if self.trace_on {
            self.emit(TraceEventKind::FlushBegin {
                flush_seq: this_flush,
                probes: probe_count as u64,
                shards: u64::from(self.config.shards),
            });
        }
        self.phase_begin(CheckPhase::FlushPlan);
        let snapshot = match &self.route_snapshot {
            Some(s) => Arc::clone(s),
            None => {
                let s = Arc::new(self.net.snapshot());
                self.route_snapshot = Some(Arc::clone(&s));
                s
            }
        };
        // Runtime mirror of the clash-lint static rules: from here (the
        // snapshot is frozen) until the merge-queue drain finishes, the
        // cluster RNG must not advance — lane scrambling draws from
        // labelled substreams and routing is pure, so any draw here would
        // make results depend on batch timing.
        #[cfg(debug_assertions)]
        let draws_at_freeze = self.rng.draw_count();
        let bits = self.config.hash_space.bits();
        // Shard by target ring arc: shard(h) = ⌊h · N / 2^bits⌋ — N
        // contiguous key-space arcs.
        let mut lanes: Vec<Vec<(u64, PlannedProbe)>> = (0..n_shards).map(|_| Vec::new()).collect();
        for (seq, p) in probes.into_iter().enumerate() {
            let shard = ((u128::from(p.target) * n_shards as u128) >> bits) as usize;
            lanes[shard].push((seq as u64, p));
        }
        // Deliberately scramble each lane's local order with a labelled
        // substream keyed by (flush, shard). Routing is pure and the
        // merge queue re-orders by plan sequence, so this provably
        // cannot change results — which is the point: every flush is an
        // adversarial schedule, so any order-dependence in the shard
        // phase would break the equivalence pins immediately instead of
        // only under unlucky thread timings. Derived substreams never
        // advance `self.rng`, so protocol draws are untouched.
        for (shard, lane) in lanes.iter_mut().enumerate() {
            let mut jitter = self
                .rng
                .substream_indexed("shard", self.flush_seq * n_shards as u64 + shard as u64);
            for i in (1..lane.len()).rev() {
                let j = jitter.uniform_index(i + 1);
                lane.swap(i, j);
            }
        }
        self.flush_seq += 1;
        self.phase_end(CheckPhase::FlushPlan);
        self.phase_begin(CheckPhase::FlushRoute);
        // Shard phase: resolve each lane's routes against the frozen
        // snapshot — worker threads when sharding is real and the batch
        // is big enough to pay for them, inline otherwise (same code
        // path, same merge discipline).
        let mut queue: MergeQueue<u64, RoutedProbe> = MergeQueue::new(n_shards);
        let route_lane = |snap: &RouteSnapshot, lane: Vec<(u64, PlannedProbe)>| {
            lane.into_iter()
                .map(|(seq, plan)| {
                    let (lookup, path) = snap.route_with_path(plan.start, plan.target);
                    (
                        seq,
                        RoutedProbe {
                            plan,
                            owner: lookup.owner,
                            hops: lookup.hops,
                            path,
                        },
                    )
                })
                .collect::<Vec<_>>()
        };
        if n_shards > 1 && probe_count >= PAR_ROUTE_MIN {
            std::thread::scope(|scope| {
                let snap: &RouteSnapshot = &snapshot;
                let handles: Vec<_> = lanes
                    .drain(..)
                    .map(|lane| scope.spawn(move || route_lane(snap, lane)))
                    .collect();
                for (shard, handle) in handles.into_iter().enumerate() {
                    *queue.lane_mut(shard) = handle.join().expect("shard worker panicked");
                }
            });
        } else {
            for (shard, lane) in lanes.into_iter().enumerate() {
                *queue.lane_mut(shard) = route_lane(&snapshot, lane);
            }
        }
        #[cfg(debug_assertions)]
        {
            assert_eq!(
                self.rng.draw_count(),
                draws_at_freeze,
                "route phase drew from the cluster RNG between snapshot freeze and merge \
                 drain; results would depend on batch timing"
            );
            self.route_draw_checks += 1;
        }
        self.phase_end(CheckPhase::FlushRoute);
        self.phase_begin(CheckPhase::FlushMerge);
        // Charge phase, pass 1: lay out every transport message of the
        // flush in global plan order — each probe's routing hops, then
        // its owner→start response — and resolve the whole sequence in
        // one [`Transport::send_batch`]. The batch contract guarantees
        // the same deliveries, stats, and per-link draw order as the
        // equivalent `send` loop; pre-resolving ahead of the accounting
        // replay is safe because a flush only ever runs on a connected
        // transport (see `partition_network` / `heal_partition`), so
        // the sequential loop could never have aborted mid-probe and
        // skipped later sends.
        let routed: Vec<RoutedProbe> = queue.drain().into_iter().map(|(_, r)| r).collect();
        let mut send_specs: Vec<SendSpec> = Vec::with_capacity(routed.len() * 2);
        for r in &routed {
            debug_assert_eq!(
                r.owner, r.plan.owner,
                "batch window spanned a ring change: routed owner diverged from plan"
            );
            for &(from, to) in &r.path {
                send_specs.push(SendSpec {
                    src: from.value(),
                    dst: to.value(),
                    class: MessageClass::Probe,
                });
            }
            send_specs.push(SendSpec {
                src: r.owner.value(),
                dst: r.plan.start.value(),
                class: MessageClass::ProbeResponse,
            });
        }
        let mut deliveries: Vec<Delivery> = Vec::new();
        self.transport.send_batch(&send_specs, &mut deliveries);
        // Pass 2: replay the per-op accounting over the resolved
        // deliveries in the same plan order — hop stats, probe
        // counters, and the locate latency observation at each op's
        // final probe. Unreachable deliveries surface the same error at
        // the same position the sequential loop would have raised it.
        let mut op_latency = SimDuration::ZERO;
        let mut op_hop = 0_u32;
        let mut cursor = 0usize;
        for routed in routed {
            self.net.record_routed_lookup(routed.hops);
            for &(from, to) in &routed.path {
                match deliveries[cursor] {
                    Delivery::Delivered { latency, .. } => op_latency += latency,
                    Delivery::Unreachable { .. } => {
                        return Err(ClashError::NetworkUnreachable { from, to });
                    }
                }
                cursor += 1;
            }
            match deliveries[cursor] {
                Delivery::Delivered { latency, .. } => op_latency += latency,
                Delivery::Unreachable { .. } => {
                    return Err(ClashError::NetworkUnreachable {
                        from: routed.owner,
                        to: routed.plan.start,
                    });
                }
            }
            cursor += 1;
            self.msgs.probes += 1;
            self.msgs.probe_messages += u64::from(routed.hops) + 1;
            op_hop += 1;
            if self.trace_on {
                self.emit(TraceEventKind::LocateProbe {
                    key: routed.plan.key_bits,
                    depth: routed.plan.depth,
                    server: routed.owner.value(),
                    accepted: routed.plan.op_end,
                    hop: op_hop,
                });
            }
            if routed.plan.op_end {
                self.msgs.locates += 1;
                self.latency.locate.observe(ms(op_latency));
                op_latency = SimDuration::ZERO;
                op_hop = 0;
            }
        }
        debug_assert_eq!(
            cursor,
            deliveries.len(),
            "charge replay must consume every delivery"
        );
        self.phase_end(CheckPhase::FlushMerge);
        if self.trace_on {
            self.emit(TraceEventKind::FlushEnd {
                flush_seq: this_flush,
            });
        }
        Ok(())
    }

    /// Baseline `DHT(x)` lookup: the depth is fixed, one DHT routing
    /// resolves the owner. Lazily installs the group on its owner (the
    /// baseline has up to `2^x` groups; they materialize on first touch).
    fn locate_fixed_depth(&mut self, key: Key) -> Result<Placement, ClashError> {
        let depth = self.config.initial_depth;
        let group = Prefix::of_key(key, depth);
        let h = self.hasher.hash_key(group.virtual_key());
        let start = self.net.random_alive(&mut self.rng);
        let (lookup, path) = self.net.find_successor_path(start, h);
        let mut op_latency = SimDuration::ZERO;
        self.charge_probe_route(start, lookup.owner, path, &mut op_latency)?;
        self.msgs.probes += 1;
        self.msgs.probe_messages += u64::from(lookup.hops) + 1;
        self.msgs.locates += 1;
        self.latency.locate.observe(ms(op_latency));
        let server = self
            .servers
            .get_mut(lookup.owner.value())
            .expect("owner is a ring member");
        if server.table().entry(group).is_none() {
            server.bootstrap_root(group)?;
            self.mark_dirty(lookup.owner.value());
            self.global_index.insert(group, lookup.owner);
            self.ledgers.insert(group, GroupLedger::default());
            self.ensure_replicas(group, lookup.owner);
        }
        Ok(Placement {
            server: lookup.owner,
            group,
            depth,
            probes: 1,
        })
    }

    /// Attaches a streaming data source: locates the key's group and adds
    /// the source's rate to it.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::InvalidConfig`] if the source id is already
    /// attached; propagates locate errors.
    pub fn attach_source(
        &mut self,
        source_id: u64,
        key: Key,
        rate: f64,
    ) -> Result<Placement, ClashError> {
        self.attach_source_hinted(source_id, key, rate, None)
    }

    /// [`ClashCluster::attach_source`] with a depth hint.
    ///
    /// # Errors
    ///
    /// See [`ClashCluster::attach_source`].
    pub fn attach_source_hinted(
        &mut self,
        source_id: u64,
        key: Key,
        rate: f64,
        hint: Option<u32>,
    ) -> Result<Placement, ClashError> {
        if self.sources.contains_key(&source_id) {
            return Err(ClashError::InvalidConfig {
                reason: "source id already attached",
            });
        }
        let placement = self.locate_hinted(key, hint)?;
        let ledger = self.ledgers.entry(placement.group).or_default();
        Arc::make_mut(&mut ledger.sources).push(source_id);
        ledger.rate += rate;
        self.sources.insert(
            source_id,
            SourceRec {
                key,
                rate,
                group: placement.group,
            },
        );
        self.push_group_load_batched(placement.group)?;
        Ok(placement)
    }

    /// Detaches a source (data-plane only; no protocol messages).
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::InvalidConfig`] for unknown ids.
    pub fn detach_source(&mut self, source_id: u64) -> Result<(), ClashError> {
        let rec = self
            .sources
            .remove(&source_id)
            .ok_or(ClashError::InvalidConfig {
                reason: "unknown source id",
            })?;
        let ledger = self
            .ledgers
            .get_mut(&rec.group)
            .expect("attached source has a ledger");
        Arc::make_mut(&mut ledger.sources).retain(|&s| s != source_id);
        ledger.rate = (ledger.rate - rec.rate).max(0.0);
        self.push_group_load_batched(rec.group)?;
        self.cleanup_baseline_group(rec.group)?;
        Ok(())
    }

    /// In the fixed-depth baseline, groups materialize lazily on first
    /// touch; symmetrically, an emptied group is dematerialized so a long
    /// `DHT(24)` run does not accumulate millions of dead entries.
    fn cleanup_baseline_group(&mut self, group: Prefix) -> Result<(), ClashError> {
        if self.config.splitting_enabled {
            return Ok(());
        }
        let empty = self
            .ledgers
            .get(&group)
            .is_some_and(|l| l.sources.is_empty() && l.queries.is_empty());
        if !empty {
            return Ok(());
        }
        self.ledgers.remove(&group);
        if let Some(owner) = self.oracle_owner(group) {
            self.invalidate_replicas(group, owner);
            self.global_index.remove(group);
            let server = self
                .servers
                .get_mut(owner.value())
                .ok_or(ClashError::UnknownServer { server: owner })?;
            let _ = server.handle_release_keygroup(group);
            self.mark_dirty(owner.value());
        }
        Ok(())
    }

    /// Moves a source to a new key (the paper's "virtual stream" key
    /// change): detach, then re-locate with the previous depth as hint.
    ///
    /// # Errors
    ///
    /// Propagates detach/attach errors.
    pub fn move_source(&mut self, source_id: u64, new_key: Key) -> Result<Placement, ClashError> {
        self.move_source_with_rate(source_id, new_key, None)
    }

    /// [`ClashCluster::move_source`] with an optional new rate (workload
    /// phase changes alter per-source rates at the next key change).
    ///
    /// # Errors
    ///
    /// Propagates detach/attach errors.
    pub fn move_source_with_rate(
        &mut self,
        source_id: u64,
        new_key: Key,
        new_rate: Option<f64>,
    ) -> Result<Placement, ClashError> {
        let rec = self
            .sources
            .get(&source_id)
            .ok_or(ClashError::InvalidConfig {
                reason: "unknown source id",
            })?;
        let hint = rec.group.depth();
        let rate = new_rate.unwrap_or(rec.rate);
        self.detach_source(source_id)?;
        self.attach_source_hinted(source_id, new_key, rate, Some(hint))
    }

    /// Attaches a continuous query object to its key's group.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::InvalidConfig`] if the query id is already
    /// attached; propagates locate errors.
    pub fn attach_query(&mut self, query_id: u64, key: Key) -> Result<Placement, ClashError> {
        if self.queries.contains_key(&query_id) {
            return Err(ClashError::InvalidConfig {
                reason: "query id already attached",
            });
        }
        let placement = self.locate(key)?;
        let ledger = self.ledgers.entry(placement.group).or_default();
        Arc::make_mut(&mut ledger.queries).push(query_id);
        self.queries.insert(
            query_id,
            QueryRec {
                key,
                group: placement.group,
            },
        );
        self.push_group_load_batched(placement.group)?;
        Ok(placement)
    }

    /// Detaches a query (e.g. its client's lifetime expired).
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::InvalidConfig`] for unknown ids.
    pub fn detach_query(&mut self, query_id: u64) -> Result<(), ClashError> {
        let rec = self
            .queries
            .remove(&query_id)
            .ok_or(ClashError::InvalidConfig {
                reason: "unknown query id",
            })?;
        let ledger = self
            .ledgers
            .get_mut(&rec.group)
            .expect("attached query has a ledger");
        Arc::make_mut(&mut ledger.queries).retain(|&q| q != query_id);
        self.push_group_load_batched(rec.group)?;
        self.cleanup_baseline_group(rec.group)?;
        Ok(())
    }

    /// Number of currently attached sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of currently attached queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Defers the load report while a batch window is open (last write
    /// wins: only the final rate before a barrier is observable, and
    /// nothing reads owner loads between barriers), otherwise pushes
    /// immediately. Used at the four client-op sites only — split,
    /// merge and recovery push synchronously because their reports are
    /// part of a barrier.
    fn push_group_load_batched(&mut self, group: Prefix) -> Result<(), ClashError> {
        if self.batching_active() {
            self.batch_touched.insert(group);
            Ok(())
        } else {
            self.push_group_load(group)
        }
    }

    fn push_group_load(&mut self, group: Prefix) -> Result<(), ClashError> {
        if self.pending_recovery.contains_key(&group) {
            // The group is waiting for a partition-deferred promotion: it
            // has no live owner to push to. The ledger update stands and
            // is reconciled when the group comes back.
            return Ok(());
        }
        let owner = self
            .oracle_owner(group)
            .ok_or(ClashError::UnknownGroup { group })?;
        let load = self
            .ledgers
            .get(&group)
            .map(|l| l.load())
            .unwrap_or_default();
        self.servers
            .get_mut(owner.value())
            .ok_or(ClashError::UnknownServer { server: owner })?
            .set_group_load(group, load)?;
        self.mark_dirty(owner.value());
        if self.replication_enabled() {
            self.refresh_replica_payloads(group, owner);
        }
        Ok(())
    }

    // ----- successor-list replication (beyond the paper) ----------------
    //
    // With `replication_factor` r > 0, every active key group's entry and
    // ledger is mirrored on the owner's first r alive ring successors
    // (the owner's own successor list — the classic Chord placement).
    // Placement changes are explicit, charged `REPLICATE_KEYGROUP` /
    // `ACK_REPLICA` exchanges; payload freshness piggybacks on the
    // data-plane traffic the harness already aggregates analytically
    // (every ledger mutation refreshes reachable holders for free, the
    // way a real store ships write deltas with the stream itself).
    // Partitions defer placement work exactly like load reports: an
    // unreachable holder is simply skipped and re-seeded by the periodic
    // sync after healing.

    /// The current ledger of `group` as a replica payload. O(1): the
    /// member lists are shared `Arc` snapshots, cloned per holder by
    /// reference count only — the write-through path copies-on-write at
    /// the *next* ledger mutation instead of deep-cloning per seed.
    fn replica_payload(&self, group: Prefix, owner: ServerId) -> ReplicaRecord {
        let ledger = self.ledgers.get(&group);
        ReplicaRecord {
            owner,
            sources: ledger.map(|l| Arc::clone(&l.sources)).unwrap_or_default(),
            queries: ledger.map(|l| Arc::clone(&l.queries)).unwrap_or_default(),
        }
    }

    /// Brings `group`'s replica set up to the owner's current successor
    /// list: seeds missing holders (one charged `REPLICATE_KEYGROUP` +
    /// `ACK_REPLICA` round trip each) and invalidates holders that fell
    /// out of the set. Holders already seeded are left alone — their
    /// payloads are kept fresh by the write-through refresh. Unreachable
    /// holders are skipped (soft state; retried next period).
    fn ensure_replicas(&mut self, group: Prefix, owner: ServerId) {
        if !self.replication_enabled() {
            return;
        }
        // Owning the primary supersedes any copy this server once held as
        // a ring successor of a previous owner.
        self.servers
            .get_mut(owner.value())
            .expect("owner is a live server")
            .replica_store_mut()
            .drop_held(group);
        let desired = self
            .net
            .alive_successors(owner, self.config.replication_factor);
        let desired_len = desired.len();
        let previous: Vec<ServerId> = self
            .servers
            .get(owner.value())
            .expect("owner is a live server")
            .replica_store()
            .placed(group)
            .to_vec();
        let payload = self.replica_payload(group, owner);
        let mut placed = Vec::with_capacity(desired.len());
        for holder in desired {
            let already = previous.contains(&holder)
                && self.servers.get(holder.value()).is_some_and(|s| {
                    s.replica_store()
                        .held(group)
                        .is_some_and(|r| r.owner == owner)
                });
            if already {
                placed.push(holder);
                continue;
            }
            let mut lat = SimDuration::ZERO;
            if self.transport_send(owner, holder, MessageClass::ReplicateKeygroup, &mut lat)
                && self.transport_send(holder, owner, MessageClass::AckReplica, &mut lat)
            {
                self.msgs.replication_messages += 2;
                self.latency.replication.observe(ms(lat));
                self.servers
                    .get_mut(holder.value())
                    .expect("reachable holder is a live server")
                    .replica_store_mut()
                    .store(group, payload.clone());
                placed.push(holder);
            }
        }
        // Release holders that fell out of the successor set — but only
        // once the new set is fully in place. While under-replicated
        // (a partition deferred some seed), old copies are retained:
        // never invalidate what may be the last replica.
        let fully_placed = placed.len() == desired_len;
        for stale in previous {
            if placed.contains(&stale) || !self.servers.contains(stale.value()) {
                continue; // dead holders' copies died with them
            }
            if !fully_placed {
                placed.push(stale); // retained: still a live replica
                continue;
            }
            let mut lat = SimDuration::ZERO;
            if self.transport_send(owner, stale, MessageClass::ReplicateKeygroup, &mut lat) {
                self.msgs.replication_messages += 1;
                self.servers
                    .get_mut(stale.value())
                    .expect("liveness checked")
                    .replica_store_mut()
                    .drop_held(group);
            }
        }
        if !fully_placed {
            // A partition deferred part of the set: keep the group on the
            // periodic sync's worklist until placement completes (the
            // historical full sweep retried every group every period).
            self.replica_dirty.insert(group);
        }
        self.servers
            .get_mut(owner.value())
            .expect("owner is a live server")
            .replica_store_mut()
            .set_placed(group, placed);
    }

    /// Invalidates every replica of `group` (the group was split, merged
    /// away, handed off, or dematerialized). One charged invalidation per
    /// reachable holder; unreachable holders keep a stale record that the
    /// periodic lease sweep expires — and that recovery can never promote,
    /// because promotion requires the record's owner to be the crashed
    /// server that actively held the group.
    fn invalidate_replicas(&mut self, group: Prefix, owner: ServerId) {
        if !self.replication_enabled() {
            return;
        }
        let Some(owner_server) = self.servers.get_mut(owner.value()) else {
            return;
        };
        let holders = owner_server.replica_store_mut().take_placed(group);
        for holder in holders {
            if !self.servers.contains(holder.value()) {
                continue; // dead holders' copies died with them
            }
            let mut lat = SimDuration::ZERO;
            if self.transport_send(owner, holder, MessageClass::ReplicateKeygroup, &mut lat) {
                self.msgs.replication_messages += 1;
                self.servers
                    .get_mut(holder.value())
                    .expect("liveness checked")
                    .replica_store_mut()
                    .drop_held(group);
            }
        }
        // The group is gone from this owner; whatever retry state it had
        // is obsolete.
        self.replica_dirty.remove(&group);
    }

    /// Write-through refresh: pushes the current ledger of `group` to the
    /// holders in the owner's registry. Free of messages — the deltas
    /// piggyback on the data-plane stream the harness aggregates
    /// analytically — but honest about partitions: an unreachable holder
    /// is dropped from the registry (its copy goes stale) and re-seeded
    /// by the periodic sync after healing.
    fn refresh_replica_payloads(&mut self, group: Prefix, owner: ServerId) {
        let holders: Vec<ServerId> = self
            .servers
            .get(owner.value())
            .expect("owner is a live server")
            .replica_store()
            .placed(group)
            .to_vec();
        if holders.is_empty() {
            return;
        }
        let holder_count = holders.len();
        let payload = self.replica_payload(group, owner);
        let mut kept = Vec::with_capacity(holders.len());
        for holder in holders {
            if self.transport.reachable(owner.value(), holder.value()) {
                if let Some(s) = self.servers.get_mut(holder.value()) {
                    s.replica_store_mut().store(group, payload.clone());
                    kept.push(holder);
                }
            }
        }
        if kept.len() != holder_count {
            // A holder went unreachable (or died): its copy goes stale and
            // the group needs re-seeding once the periodic sync can reach
            // a replacement.
            self.replica_dirty.insert(group);
        }
        self.servers
            .get_mut(owner.value())
            .expect("owner is a live server")
            .replica_store_mut()
            .set_placed(group, kept);
    }

    /// Periodic replica maintenance, run every load-check period (the
    /// same cadence as the load reports it piggybacks on): expires held
    /// replicas whose owner has left the ring (a local observation from
    /// ring maintenance, so it is partition-safe — and deliberately the
    /// *only* expiry trigger: a holder that merely fell off its owner's
    /// registry, e.g. because a partition starved its write-through, may
    /// carry the last surviving copy and keeps it until the owner either
    /// re-seeds or explicitly invalidates it), then re-ensures every
    /// active group's replica set against the owner's current successor
    /// list.
    fn sync_replicas(&mut self) {
        if !self.replication_enabled() {
            return;
        }
        if !self.replica_full_sync {
            // Steady state: no owner died and no membership changed since
            // the last sync, so lease expiry would be a no-op and every
            // fully-placed group's re-ensure would send nothing. Only the
            // groups whose placement is actually incomplete need work.
            if self.replica_dirty.is_empty() {
                return;
            }
            let dirty = std::mem::take(&mut self.replica_dirty);
            for group in dirty {
                // The group may have been split/merged away (its replicas
                // were invalidated inline) or be awaiting a deferred
                // recovery; only currently active groups re-ensure.
                let Some(owner) = self.global_index.get(group).copied() else {
                    continue;
                };
                self.ensure_replicas(group, owner);
            }
            return;
        }
        // Membership changed: the historical full sweep — expire held
        // replicas whose owner left the ring, then re-ensure every active
        // group against its owner's current successor list.
        self.replica_full_sync = false;
        self.replica_dirty.clear();
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        ids.extend(self.servers.ids());
        let pending: BTreeSet<Prefix> = self.pending_recovery.keys().copied().collect();
        for &sid in &ids {
            let net = &self.net;
            self.servers
                .get_mut(sid)
                .expect("snapshotted id")
                .replica_store_mut()
                .expire_held(|group, owner| pending.contains(&group) || net.is_alive(owner));
        }
        // Re-ensure placement for every active group, owner by owner. The
        // work-list collection is a pure read of per-server tables, so at
        // scale it fans out per ring arc onto scope workers; each lane
        // funnels back through the MergeQueue keyed by server id, which
        // reproduces the sequential ascending-id, per-server push order
        // exactly (the arc function is monotone and per-lane sorting is
        // stable). The `ensure_replicas` apply stays on this thread.
        const PAR_SWEEP_MIN: usize = 512;
        let n_shards = self.config.shards.max(1) as usize;
        let work: Vec<(Prefix, ServerId)> = if n_shards > 1 && ids.len() >= PAR_SWEEP_MIN {
            let servers = &self.servers;
            let arcs = servers.arc_ids(n_shards, self.config.hash_space.bits());
            let mut queue: MergeQueue<u64, (Prefix, ServerId)> = MergeQueue::new(n_shards);
            std::thread::scope(|scope| {
                let handles: Vec<_> = arcs
                    .iter()
                    .map(|arc| {
                        scope.spawn(move || {
                            let mut lane: Vec<(u64, (Prefix, ServerId))> = Vec::new();
                            for &sid in arc {
                                let server = servers.get(sid).expect("arc ids are live");
                                let owner = server.id();
                                lane.extend(
                                    server
                                        .table()
                                        .active_groups()
                                        .map(|e| (sid, (e.group, owner))),
                                );
                            }
                            lane
                        })
                    })
                    .collect();
                for (arc, handle) in handles.into_iter().enumerate() {
                    *queue.lane_mut(arc) = handle.join().expect("replica sweep worker panicked");
                }
            });
            queue.drain().into_iter().map(|(_, w)| w).collect()
        } else {
            let mut work = Vec::new();
            for &sid in &ids {
                let server = self.servers.get(sid).expect("snapshotted id");
                let owner = server.id();
                work.extend(server.table().active_groups().map(|e| (e.group, owner)));
            }
            work
        };
        self.ids_scratch = ids;
        for (group, owner) in work {
            self.ensure_replicas(group, owner);
        }
    }

    // ----- load checks: reports, splits, merges (§4–5) ------------------

    /// Runs one cluster-wide load check: leaves report to parents, every
    /// overloaded server sheds its hottest groups by binary splitting, and
    /// underloaded servers consolidate cold children bottom-up.
    ///
    /// # Errors
    ///
    /// Propagates protocol invariant violations (none occur in correct
    /// operation; the tests rely on this).
    pub fn run_load_check(&mut self) -> Result<LoadCheckReport, ClashError> {
        self.flush_batch()?;
        self.load_checks_run += 1;
        let ordinal = self.load_checks_run;
        if self.trace_on {
            self.emit(TraceEventKind::LoadCheckBegin {
                ordinal,
                dirty_servers: self.dirty_servers.len() as u64,
            });
        }
        if self.full_scan_checks {
            // Reference mode: reclassify everything from scratch, exactly
            // like the historical per-period sweep.
            self.mark_all_dirty();
            self.replica_full_sync = true;
        }
        let mut report = LoadCheckReport::default();
        if self.replication_enabled() {
            self.phase_begin(CheckPhase::Recovery);
            let recovery_result = self.retry_deferred_recoveries(&mut report);
            self.phase_end(CheckPhase::Recovery);
            recovery_result?;
        }
        if !self.config.splitting_enabled {
            self.phase_begin(CheckPhase::ReplicaSync);
            self.sync_replicas();
            self.phase_end(CheckPhase::ReplicaSync);
            if self.trace_on {
                self.emit(TraceEventKind::LoadCheckEnd {
                    ordinal,
                    splits: 0,
                    merges: 0,
                });
            }
            return Ok(report);
        }
        self.phase_begin(CheckPhase::CandidateRefresh);
        self.refresh_candidates();
        self.phase_end(CheckPhase::CandidateRefresh);
        self.phase_begin(CheckPhase::Reports);
        self.deliver_load_reports();
        self.phase_end(CheckPhase::Reports);
        self.phase_begin(CheckPhase::SplitSpeculate);
        self.refresh_candidates();
        self.speculate_split_routes();
        self.phase_end(CheckPhase::SplitSpeculate);
        self.phase_begin(CheckPhase::Splits);
        // Split phase. The historical sweep walked every server in
        // ascending id order, splitting while overloaded; walking the
        // overloaded candidate set behind an ascending cursor visits
        // exactly the same servers in the same order — a server that
        // becomes overloaded mid-phase is picked up iff its id is still
        // ahead of the cursor, just as the full walk would have.
        let mut cursor = 0u64;
        loop {
            self.refresh_candidates();
            let Some(sid_value) = self.overloaded.first_at_or_after(cursor) else {
                break;
            };
            let mut splits_done = 0;
            while splits_done < self.max_splits_per_check {
                let server = self.servers.get(sid_value).expect("candidates are live");
                if server.load_level() != LoadLevel::Overloaded {
                    break;
                }
                match self.try_split(sid_value)? {
                    Some(record) => {
                        report.splits.push(record);
                        splits_done += 1;
                    }
                    None => break,
                }
            }
            let Some(next) = sid_value.checked_add(1) else {
                break;
            };
            cursor = next;
        }
        // Stale speculations for candidates that recovered (or whose
        // hottest group moved) before their turn must not leak into the
        // next check's snapshot window.
        self.split_route_cache.clear();
        self.phase_end(CheckPhase::Splits);
        self.phase_begin(CheckPhase::Merges);
        // Merge phase, same cursor discipline over the mergeable set
        // (underloaded servers holding at least one split entry — the
        // only ones the full walk could have done anything with).
        let mut cursor = 0u64;
        loop {
            self.refresh_candidates();
            let Some(sid_value) = self.mergeable.first_at_or_after(cursor) else {
                break;
            };
            let mut merges_done = 0;
            while merges_done < self.max_merges_per_check {
                let server = self.servers.get(sid_value).expect("candidates are live");
                if server.load_level() != LoadLevel::Underloaded {
                    break;
                }
                match self.try_merge(sid_value)? {
                    MergeOutcome::Merged(record) => {
                        report.merges.push(record);
                        merges_done += 1;
                    }
                    MergeOutcome::Refused => {
                        // The stale report was cleared by try_merge, so
                        // this candidate is gone; keep going — the next
                        // candidate may still be mergeable. The loop
                        // terminates because every refusal permanently
                        // removes one candidate within this check.
                        report.refusals += 1;
                    }
                    MergeOutcome::NoCandidate => break,
                }
            }
            let Some(next) = sid_value.checked_add(1) else {
                break;
            };
            cursor = next;
        }
        self.phase_end(CheckPhase::Merges);
        self.phase_begin(CheckPhase::ReplicaSync);
        self.sync_replicas();
        self.phase_end(CheckPhase::ReplicaSync);
        self.debug_verify();
        if self.trace_on {
            self.emit(TraceEventKind::LoadCheckEnd {
                ordinal,
                splits: report.splits.len() as u64,
                merges: report.merges.len() as u64,
            });
        }
        Ok(report)
    }

    fn deliver_load_reports(&mut self) {
        // Only servers in the reporter candidate set are visited — the
        // others would have contributed nothing to the historical full
        // sweep. The scratch batch is reused across periods.
        let mut deliveries = std::mem::take(&mut self.deliver_scratch);
        deliveries.clear();
        for sid_value in self.reporters.iter() {
            let server = self.servers.get(sid_value).expect("reporters are live");
            let own_id = server.id();
            server.for_each_pending_report(|dest, group, load, is_leaf| {
                deliveries.push((own_id, dest, group, load, is_leaf, dest != own_id));
            });
        }
        for &(src, dest, group, load, is_leaf, remote) in &deliveries {
            if remote {
                let mut latency = SimDuration::ZERO;
                if !self.transport_send(src, dest, MessageClass::LoadReport, &mut latency) {
                    // Reports are soft state: one lost to a partition is
                    // simply re-sent (and re-counted) next check period.
                    continue;
                }
                self.msgs.report_messages += 1;
                self.latency.report.observe(ms(latency));
            }
            if let Some(server) = self.servers.get_mut(dest.value()) {
                server.handle_load_report(group, load, is_leaf);
            }
        }
        self.deliver_scratch = deliveries;
    }

    /// Pre-routes the *first* split placement of every overloaded
    /// candidate, per ring arc on scope workers, against the frozen
    /// route snapshot. Runs once at the start of the split phase, after
    /// the opening candidate refresh: routing state cannot change inside
    /// a load check (ring membership only moves between checks), so the
    /// snapshot stays valid for the whole phase, and
    /// [`RouteSnapshot::route_with_path`] is pinned bit-for-bit to the
    /// live router. Reading the per-arc slices of the overloaded set
    /// keeps each worker on exactly its own arc's servers; results
    /// funnel back through the [`MergeQueue`] keyed by splitter id.
    ///
    /// Purely an execution-strategy move: `try_split` verifies every
    /// cached entry against the hash it would have routed (and replays
    /// the lookup accounting), so a consumed speculation is
    /// indistinguishable from the live call it replaces.
    fn speculate_split_routes(&mut self) {
        const PAR_SPECULATE_MIN: usize = 64;
        self.split_route_cache.clear();
        let n_shards = self.config.shards.max(1) as usize;
        if n_shards <= 1 || self.overloaded.len() < PAR_SPECULATE_MIN {
            return;
        }
        let snapshot = match &self.route_snapshot {
            Some(s) => Arc::clone(s),
            None => {
                let s = Arc::new(self.net.snapshot());
                self.route_snapshot = Some(Arc::clone(&s));
                s
            }
        };
        let servers = &self.servers;
        let hasher = self.hasher;
        let arc_count = self.overloaded.arc_count();
        let mut queue: MergeQueue<u64, SpeculatedRoute> = MergeQueue::new(arc_count);
        std::thread::scope(|scope| {
            let snap: &RouteSnapshot = &snapshot;
            let handles: Vec<_> = (0..arc_count)
                .map(|arc| {
                    let ids = self.overloaded.arc(arc);
                    scope.spawn(move || {
                        let mut lane = Vec::new();
                        for &sid in ids {
                            let Some(server) = servers.get(sid) else {
                                continue;
                            };
                            let Some(hot) = server.hottest_splittable() else {
                                continue;
                            };
                            let Ok((_, right)) = hot.split() else {
                                continue;
                            };
                            let h = hasher.hash_key(right.virtual_key());
                            let (lookup, path) = snap.route_with_path(server.id(), h);
                            lane.push((sid, (h, lookup, path)));
                        }
                        lane
                    })
                })
                .collect();
            for (arc, handle) in handles.into_iter().enumerate() {
                *queue.lane_mut(arc) = handle.join().expect("split speculation worker panicked");
            }
        });
        for (sid, entry) in queue.drain() {
            self.split_route_cache.insert(sid, entry);
        }
    }

    /// Splits the hottest group of `sid_value`, placing the right child via
    /// the DHT with the self-map retry of §5. Returns `None` when the
    /// server has nothing left to split, or when a network partition makes
    /// the *first* placement undeliverable (the split is abandoned before
    /// any state changes and retried at a later load check). If earlier
    /// self-mapped retry iterations already committed their (purely local)
    /// splits when the cut is hit, the operation completes as a local
    /// split instead — the right child stays on this server, exactly as a
    /// terminal self-map would leave it — so every committed split is
    /// reported.
    fn try_split(&mut self, sid_value: u64) -> Result<Option<SplitRecord>, ClashError> {
        let splitter = self.servers.get(sid_value).expect("server exists");
        let server_id = splitter.id();
        let Some(hot) = splitter.hottest_splittable() else {
            return Ok(None);
        };
        // The load that triggered this split, for the flight recorder
        // (only read when tracing — the protocol itself re-reads live).
        let trigger_load = if self.trace_on {
            splitter.current_load()
        } else {
            0.0
        };
        let mut group = hot;
        let mut op_latency = SimDuration::ZERO;
        let mut committed_splits = false;
        // A speculative pre-routed placement, if the split phase produced
        // one for this candidate; only the first iteration can use it.
        let mut speculated = self.split_route_cache.remove(&sid_value);
        // Finishes the operation after self-mapped iterations committed but
        // a later placement crossed the partition: the last right child is
        // already active locally, which is a valid terminal state.
        let finish_local = |cluster: &mut Self, lat: SimDuration| {
            cluster.latency.split.observe(ms(lat));
            Ok(Some(SplitRecord {
                server: server_id,
                group: hot,
                right_child_server: server_id,
            }))
        };
        loop {
            // Resolve the right child's placement via the DHT *first* (§5)
            // and require every hop plus the eventual ACCEPT_KEYGROUP to be
            // deliverable before this iteration mutates any state. An
            // aborted placement still counts as a lookup in `NetStats` —
            // the routing hops up to the cut were genuinely attempted.
            let (_, right_prefix) = group.split()?;
            let h = self.hasher.hash_key(right_prefix.virtual_key());
            let (lookup, path) = match speculated.take() {
                // The speculation targeted exactly this hash, so its
                // snapshot route is the live route; replay the lookup
                // accounting the live call would have recorded. A stale
                // entry (the hottest group changed since speculation)
                // falls through to live routing.
                Some((spec_h, lookup, path)) if spec_h == h => {
                    self.net.record_routed_lookup(lookup.hops);
                    (lookup, path)
                }
                _ => self.net.find_successor_path(server_id, h),
            };
            for (from, to) in path {
                if !self.transport_send(from, to, MessageClass::Probe, &mut op_latency) {
                    return if committed_splits {
                        finish_local(self, op_latency)
                    } else {
                        Ok(None)
                    };
                }
            }
            let target = lookup.owner;
            let self_mapped = target == server_id;
            if !self_mapped
                && !self.transport_send(
                    server_id,
                    target,
                    MessageClass::AcceptKeygroup,
                    &mut op_latency,
                )
            {
                return if committed_splits {
                    finish_local(self, op_latency)
                } else {
                    Ok(None)
                };
            }

            let (left, right) = self
                .servers
                .get_mut(sid_value)
                .expect("server exists")
                .split_group(group)?;
            self.mark_dirty(sid_value);
            debug_assert_eq!(right, right_prefix);
            self.msgs.splits += 1;
            self.msgs.split_messages += u64::from(lookup.hops);
            let (left_ledger, right_ledger) = self.partition_ledger(group, left, right);
            let left_load = left_ledger.load();
            let right_load = right_ledger.load();
            self.ledgers.insert(left, left_ledger);
            let right_queries = right_ledger.queries.len() as u64;
            let right_sources = right_ledger.sources.len() as u64;
            self.ledgers.insert(right, right_ledger);
            if self.trace_on {
                // One event per committed binary split (self-mapped retry
                // iterations each count), matching `msgs.splits`.
                self.emit(TraceEventKind::Split {
                    server: server_id.value(),
                    group_bits: group.pattern(),
                    group_depth: group.depth(),
                    load: trigger_load,
                    left_load: left_load.data_rate,
                    right_load: right_load.data_rate,
                    right_child_server: target.value(),
                });
            }
            self.global_index.remove(group);
            self.global_index.insert(left, server_id);
            self.servers
                .get_mut(sid_value)
                .expect("server exists")
                .set_group_load(left, left_load)?;
            self.servers
                .get_mut(sid_value)
                .expect("server exists")
                .set_right_child(group, target)?;
            // The parent entry went inactive: retire its replicas and
            // protect the freshly active left child. The right child is
            // seeded once its placement is terminal (a retry splits it
            // again immediately).
            self.invalidate_replicas(group, server_id);
            self.ensure_replicas(left, server_id);

            if self_mapped && right.depth() < self.config.max_depth {
                // Right child maps back to us: keep it and split it again
                // ("another randomized attempt to select a different
                // server node", §5). No ACCEPT_KEYGROUP is sent — the
                // retry is local — so it must not be charged as one.
                self.msgs.self_mapped_retries += 1;
                self.servers
                    .get_mut(sid_value)
                    .expect("server exists")
                    .handle_accept_keygroup(right, server_id, right_load)?;
                self.global_index.insert(right, server_id);
                committed_splits = true;
                group = right;
                continue;
            }

            if self_mapped {
                // At max depth and still self-mapped: keep the group.
                self.servers
                    .get_mut(sid_value)
                    .expect("server exists")
                    .handle_accept_keygroup(right, server_id, right_load)?;
                self.global_index.insert(right, server_id);
            } else {
                self.msgs.split_messages += 1; // the ACCEPT_KEYGROUP itself
                self.msgs.accept_keygroups += 1;
                self.msgs.state_transfer_messages += right_queries;
                self.msgs.redirect_messages += right_sources;
                self.servers
                    .get_mut(target.value())
                    .ok_or(ClashError::UnknownServer { server: target })?
                    .handle_accept_keygroup(right, server_id, right_load)?;
                self.mark_dirty(target.value());
                self.global_index.insert(right, target);
            }
            let right_home = if self_mapped { server_id } else { target };
            self.ensure_replicas(right, right_home);
            self.latency.split.observe(ms(op_latency));
            return Ok(Some(SplitRecord {
                server: server_id,
                group: hot,
                right_child_server: target,
            }));
        }
    }

    /// Repartitions the ledger of `group` between its two children by the
    /// key bit at the split depth, updating member records.
    fn partition_ledger(
        &mut self,
        group: Prefix,
        left: Prefix,
        right: Prefix,
    ) -> (GroupLedger, GroupLedger) {
        let ledger = self.ledgers.remove(&group).unwrap_or_default();
        let bit_index = group.depth();
        let mut left_rate = 0.0;
        let mut right_rate = 0.0;
        let mut left_sources = Vec::new();
        let mut right_sources = Vec::new();
        let mut left_queries = Vec::new();
        let mut right_queries = Vec::new();
        for &sid in ledger.sources.iter() {
            let rec = self.sources.get_mut(&sid).expect("ledger member exists");
            if rec.key.bit(bit_index) == 0 {
                rec.group = left;
                left_rate += rec.rate;
                left_sources.push(sid);
            } else {
                rec.group = right;
                right_rate += rec.rate;
                right_sources.push(sid);
            }
        }
        for &qid in ledger.queries.iter() {
            let rec = self.queries.get_mut(&qid).expect("ledger member exists");
            if rec.key.bit(bit_index) == 0 {
                rec.group = left;
                left_queries.push(qid);
            } else {
                rec.group = right;
                right_queries.push(qid);
            }
        }
        (
            GroupLedger {
                sources: Arc::new(left_sources),
                queries: Arc::new(left_queries),
                rate: left_rate,
            },
            GroupLedger {
                sources: Arc::new(right_sources),
                queries: Arc::new(right_queries),
                rate: right_rate,
            },
        )
    }

    fn try_merge(&mut self, sid_value: u64) -> Result<MergeOutcome, ClashError> {
        let merger = self.servers.get(sid_value).expect("server exists");
        let server_id = merger.id();
        let Some((parent, right_holder, _combined)) = merger.merge_candidate() else {
            return Ok(MergeOutcome::NoCandidate);
        };
        // Flight-recorder context only (see `try_split`).
        let trigger_load = if self.trace_on {
            merger.current_load()
        } else {
            0.0
        };
        let (left, right) = parent.split().expect("candidate parents were split");
        if right_holder == server_id {
            // Both children local: no messages.
            self.servers
                .get_mut(sid_value)
                .expect("server exists")
                .merge_group(parent, GroupLoad::zero())?;
            self.mark_dirty(sid_value);
        } else {
            // The RELEASE_KEYGROUP round trip must be deliverable before
            // anything mutates; a partitioned child simply defers the
            // merge to a post-heal load check.
            let mut op_latency = SimDuration::ZERO;
            if !self.transport_send(
                server_id,
                right_holder,
                MessageClass::ReleaseKeygroup,
                &mut op_latency,
            ) || !self.transport_send(
                right_holder,
                server_id,
                MessageClass::ReleaseKeygroup,
                &mut op_latency,
            ) {
                return Ok(MergeOutcome::NoCandidate);
            }
            self.latency.merge.observe(ms(op_latency));
            self.msgs.merge_messages += 2; // RELEASE_KEYGROUP + response
            let response = self
                .servers
                .get_mut(right_holder.value())
                .ok_or(ClashError::UnknownServer {
                    server: right_holder,
                })?
                .handle_release_keygroup(right);
            self.mark_dirty(right_holder.value());
            match response {
                ReleaseResponse::Released { load } => {
                    let right_ledger = self.ledgers.get(&right);
                    let right_queries = right_ledger.map_or(0, |l| l.queries.len() as u64);
                    let right_sources = right_ledger.map_or(0, |l| l.sources.len() as u64);
                    self.msgs.state_transfer_messages += right_queries;
                    self.msgs.redirect_messages += right_sources;
                    self.servers
                        .get_mut(sid_value)
                        .expect("server exists")
                        .merge_group(parent, load)?;
                    self.mark_dirty(sid_value);
                }
                ReleaseResponse::Refused => {
                    // The report that motivated this merge is stale. Drop
                    // it: a live child re-reports next period, but a child
                    // orphaned by a crash (re-homed as a root) never will,
                    // and would otherwise be asked to release every period
                    // forever, starving this server's other merges.
                    self.servers
                        .get_mut(sid_value)
                        .expect("server exists")
                        .table_mut()
                        .clear_child_report(parent);
                    if self.trace_on {
                        self.emit(TraceEventKind::MergeRefused {
                            server: server_id.value(),
                            sibling_server: right_holder.value(),
                            parent_depth: parent.depth(),
                        });
                    }
                    return Ok(MergeOutcome::Refused);
                }
            }
        }
        self.msgs.merges += 1;
        if self.trace_on {
            self.emit(TraceEventKind::Merge {
                server: server_id.value(),
                parent_bits: parent.pattern(),
                parent_depth: parent.depth(),
                load: trigger_load,
                local: right_holder == server_id,
            });
        }
        // Merge the ledgers and update the oracle.
        let left_ledger = self.ledgers.remove(&left).unwrap_or_default();
        let right_ledger = self.ledgers.remove(&right).unwrap_or_default();
        let rate = left_ledger.rate + right_ledger.rate;
        let mut merged_sources = Vec::new();
        let mut merged_queries = Vec::new();
        for &sid in left_ledger
            .sources
            .iter()
            .chain(right_ledger.sources.iter())
        {
            self.sources
                .get_mut(&sid)
                .expect("ledger member exists")
                .group = parent;
            merged_sources.push(sid);
        }
        for &qid in left_ledger
            .queries
            .iter()
            .chain(right_ledger.queries.iter())
        {
            self.queries
                .get_mut(&qid)
                .expect("ledger member exists")
                .group = parent;
            merged_queries.push(qid);
        }
        self.ledgers.insert(
            parent,
            GroupLedger {
                sources: Arc::new(merged_sources),
                queries: Arc::new(merged_queries),
                rate,
            },
        );
        self.global_index.remove(left);
        self.global_index.remove(right);
        self.global_index.insert(parent, server_id);
        // The children are gone; their replicas retire and the
        // re-activated parent gets its own set.
        self.invalidate_replicas(left, server_id);
        self.invalidate_replicas(right, right_holder);
        self.push_group_load(parent)?;
        if !self.chaos_skip_merge_reseed {
            self.ensure_replicas(parent, server_id);
        }
        Ok(MergeOutcome::Merged(MergeRecord {
            server: server_id,
            parent,
        }))
    }

    // ----- live membership (join / graceful leave) ----------------------

    /// Adds a new server to the *running* cluster: the node joins the
    /// Chord ring through a random bootstrap (its fingers seeded from its
    /// successor), the ring re-stabilizes, and every table entry whose
    /// `Map()` owner is now the new node — its slice of the successor's
    /// arc — is handed off with an `ACCEPT_KEYGROUP` carrying full tree
    /// state. Ledgers stay keyed by group; migrated queries are charged
    /// as state transfer and migrated sources as redirects, and every
    /// parent/right-child pointer naming a migrated entry's old holder is
    /// re-pointed. Left-child spines move wholesale (they share the
    /// parent entry's virtual key, hence its hash), so merge-ability is
    /// fully preserved — the membership contrast to
    /// [`ClashCluster::fail_server`]'s orphaning recovery.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::InvalidConfig`] if the identifier is already
    /// present in the ring (alive or crashed).
    pub fn join_server(&mut self, new_id: ServerId) -> Result<JoinReport, ClashError> {
        // Membership barrier: charge all batched work against the ring
        // as it was when that work was planned.
        self.flush_batch()?;
        if self.net.node(new_id).is_some() {
            return Err(ClashError::InvalidConfig {
                reason: "server id already present in the ring",
            });
        }
        let bootstrap = self.net.random_alive(&mut self.rng);
        let join_msgs = self
            .net
            .join(new_id, bootstrap)
            .ok_or(ClashError::InvalidConfig {
                reason: "server id already present in the ring",
            })?;
        // Join lookup + finger seeding, plus the announcement itself.
        self.msgs.handoff_messages += u64::from(join_msgs) + 1;
        let rounds = self.net.stabilize_direct();
        self.route_snapshot = None;
        self.servers.insert(ClashServer::new(new_id, self.config));
        self.mark_dirty(new_id.value());
        self.msgs.joins += 1;
        if self.trace_on {
            self.emit(TraceEventKind::ServerJoined {
                server: new_id.value(),
            });
        }
        // Every entry whose Map() owner is now the new node currently
        // sits on the new node's ring successor (the placement invariant
        // checked by `verify_consistency`), so only that one table needs
        // scanning.
        let mut to_move: Vec<TableEntry> = Vec::new();
        let successor = self
            .net
            .owner_of(new_id.value().wrapping_add(1) & self.config.hash_space.mask())
            .expect("ring is non-empty");
        if successor != new_id {
            let sid = successor.value();
            let groups: Vec<Prefix> = self
                .servers
                .get(sid)
                .expect("successor is a member")
                .table()
                .entries()
                .filter(|e| self.map_group(e.group) == new_id)
                .map(|e| e.group)
                .collect();
            for g in groups {
                let entry = self
                    .servers
                    .get_mut(sid)
                    .expect("successor is a member")
                    .table_mut()
                    .extract_entry(g)
                    .expect("snapshotted entry");
                to_move.push(entry);
            }
            self.mark_dirty(sid);
        }
        let tally = self.migrate_entries(successor, to_move)?;
        // Membership changed every successor set around the new node:
        // re-replicate immediately (the join announcement triggers it),
        // like any DHT store would.
        self.replica_full_sync = true;
        self.sync_replicas();
        self.debug_verify();
        Ok(JoinReport {
            joined: new_id,
            groups_received: tally.active_groups,
            entries_received: tally.entries,
            parents_repointed: tally.parents_repointed,
            right_children_repointed: tally.right_children_repointed,
            stabilization_rounds: rounds,
        })
    }

    /// [`ClashCluster::join_server`] with a fresh random identifier drawn
    /// from the cluster's deterministic RNG. Returns the id alongside the
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates join errors (identifier collisions are retried
    /// internally, so they do not surface).
    pub fn join_random_server(&mut self) -> Result<JoinReport, ClashError> {
        loop {
            let id = ServerId::new(self.rng.next_u64(), self.config.hash_space);
            if self.net.node(id).is_none() {
                return self.join_server(id);
            }
        }
    }

    /// Gracefully drains a server: it announces its departure, transfers
    /// *all* of its table entries (active groups and interior split
    /// entries alike, with their loads and tree pointers) to their
    /// post-departure `Map()` owners — its ring successor — and leaves
    /// the ring without a trace. Pointers at the leaver are re-pointed at
    /// the receiving server. Contrast with [`ClashCluster::fail_server`]:
    /// a crash loses the interior entries, so re-homed groups become
    /// roots and their subtrees can never merge above the break; a drain
    /// preserves the whole logical tree.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::UnknownServer`] for unknown servers and
    /// [`ClashError::InvalidConfig`] when asked to drain the last one.
    pub fn leave_server(&mut self, victim: ServerId) -> Result<LeaveReport, ClashError> {
        // Membership barrier: charge all batched work against the ring
        // as it was when that work was planned.
        self.flush_batch()?;
        if self.servers.len() <= 1 {
            return Err(ClashError::InvalidConfig {
                reason: "cannot drain the last server",
            });
        }
        let server = self
            .servers
            .remove(victim.value())
            .ok_or(ClashError::UnknownServer { server: victim })?;
        self.forget_server(victim.value());
        let entries: Vec<TableEntry> = server.table().entries().cloned().collect();
        // The departure announcement to the ring successor.
        self.msgs.handoff_messages += 1;
        self.msgs.leaves += 1;
        if self.trace_on {
            self.emit(TraceEventKind::ServerLeft {
                server: victim.value(),
            });
        }
        self.net.remove_node(victim);
        let rounds = self.net.stabilize_direct();
        self.route_snapshot = None;
        let tally = self.migrate_entries(victim, entries)?;
        // The leaver's held replicas vanished with it: re-replicate
        // immediately so no group waits out a load-check period
        // under-protected.
        self.replica_full_sync = true;
        self.sync_replicas();
        self.debug_verify();
        Ok(LeaveReport {
            left: victim,
            groups_transferred: tally.active_groups,
            entries_transferred: tally.entries,
            parents_repointed: tally.parents_repointed,
            right_children_repointed: tally.right_children_repointed,
            stabilization_rounds: rounds,
        })
    }

    /// Moves already-extracted entries from `from` to their current
    /// `Map()` owners: installs them with tree state intact, updates the
    /// oracle for active groups, charges state-transfer/redirect costs
    /// from the ledgers, and re-points parent/right-child pointers
    /// cluster-wide. Handoffs are modeled *reliable*: a partition delays
    /// (and is not latency-charged) but never destroys a transfer —
    /// membership changes across an active partition are outside this
    /// harness's scenarios.
    fn migrate_entries(
        &mut self,
        from: ServerId,
        entries: Vec<TableEntry>,
    ) -> Result<MigrationTally, ClashError> {
        let mut moved_to: BTreeMap<Prefix, ServerId> = BTreeMap::new();
        for entry in &entries {
            moved_to.insert(entry.group, self.map_group(entry.group));
        }
        let mut active_groups = 0;
        let entries_n = entries.len();
        for entry in entries {
            let group = entry.group;
            let dest = moved_to[&group];
            // One direct ACCEPT_KEYGROUP per migrated entry — sender and
            // receiver are ring neighbours, so no DHT routing is charged.
            self.msgs.handoff_messages += 1;
            let mut latency = SimDuration::ZERO;
            if self.transport_send(from, dest, MessageClass::Handoff, &mut latency) {
                self.latency.handoff.observe(ms(latency));
            }
            let active = entry.active;
            if active {
                if let Some(ledger) = self.ledgers.get(&group) {
                    self.msgs.state_transfer_messages += ledger.queries.len() as u64;
                    self.msgs.redirect_messages += ledger.sources.len() as u64;
                }
                self.global_index.insert(group, dest);
                active_groups += 1;
            }
            {
                let dest_server = self
                    .servers
                    .get_mut(dest.value())
                    .ok_or(ClashError::UnknownServer { server: dest })?;
                dest_server.table_mut().install_entry(entry)?;
                // The new owner may have been one of the group's replica
                // holders; owning the primary supersedes the copy.
                dest_server.replica_store_mut().drop_held(group);
            }
            self.mark_dirty(dest.value());
            if active {
                // The group changed owners: the old replica set (placed
                // by `from`) retires and the new owner seeds its own. A
                // departed `from` is gone already — its stale records
                // expire at the next lease sweep instead.
                self.invalidate_replicas(group, from);
                self.ensure_replicas(group, dest);
            }
        }
        let mut parents_repointed = 0;
        let mut right_children_repointed = 0;
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        ids.extend(self.servers.ids());
        for &sid in &ids {
            // Re-points only rewrite pointer destinations (never a group's
            // activity, load, or report-owing status), so they need no
            // dirty mark.
            let (p, r) = self
                .servers
                .get_mut(sid)
                .expect("snapshotted id")
                .table_mut()
                .repoint_moved_entries(|g| moved_to.get(&g).copied());
            parents_repointed += p;
            right_children_repointed += r;
        }
        self.ids_scratch = ids;
        // Each re-point is one notification message.
        self.msgs.handoff_messages += (parents_repointed + right_children_repointed) as u64;
        Ok(MigrationTally {
            active_groups,
            entries: entries_n,
            parents_repointed,
            right_children_repointed,
        })
    }

    // ----- extensions beyond the paper's evaluation ---------------------

    /// Kills a server (crash model) and recovers. The Chord ring repairs
    /// itself; what happens to the victim's active key groups depends on
    /// [`crate::config::ClashConfig::replication_factor`]:
    ///
    /// * **`r = 0`** (default) — the historical oracle crutch: groups are
    ///   re-bootstrapped onto their new `Map()` owners with ledgers read
    ///   from the simulation's global state, modeling unspecified
    ///   "DHT-level replication". Bit-for-bit identical to the
    ///   pre-replication behavior.
    /// * **`r ≥ 1`** — real recovery: the new `Map()` owner of each lost
    ///   group fetches state from the first live successor replica and
    ///   promotes it — ledger included, so stream clients reconnect to
    ///   real recovered state — without a single oracle read (counted by
    ///   [`ClashCluster::recovery_oracle_reads`]). Groups whose replicas
    ///   all sit behind a partition defer ([`FailureReport::groups_deferred`],
    ///   retried each load check); groups whose owner *and* replicas all
    ///   died are truthfully reported lost and re-rooted empty.
    ///
    /// Either way, re-homed groups become roots — their parent entries
    /// died with the victim, so their subtrees lose merge-ability above
    /// the new root — and every dangling parent/right-child pointer on
    /// the survivors is repaired.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::UnknownServer`] for unknown victims and
    /// [`ClashError::InvalidConfig`] when asked to fail the last server.
    pub fn fail_server(&mut self, victim: ServerId) -> Result<FailureReport, ClashError> {
        self.fail_servers(&[victim])
    }

    /// [`ClashCluster::fail_server`] for a *simultaneous* crash of several
    /// servers — the correlated-failure case (a rack, an availability
    /// zone) that successor-list replication exists to be measured
    /// against: a burst that takes out an owner together with all `r` of
    /// its replica holders genuinely loses state, and the report says so.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::InvalidConfig`] for an empty or duplicated
    /// victim list and when the crash would take the last server;
    /// [`ClashError::UnknownServer`] for unknown victims.
    pub fn fail_servers(&mut self, victims: &[ServerId]) -> Result<FailureReport, ClashError> {
        // Membership barrier: charge all batched work against the ring
        // as it was when that work was planned.
        self.flush_batch()?;
        if victims.is_empty() {
            return Err(ClashError::InvalidConfig {
                reason: "crash burst needs at least one victim",
            });
        }
        let mut seen = BTreeSet::new();
        for v in victims {
            if !seen.insert(v.value()) {
                return Err(ClashError::InvalidConfig {
                    reason: "duplicate victim in crash burst",
                });
            }
        }
        if self.servers.len() <= victims.len() {
            return Err(ClashError::InvalidConfig {
                reason: "cannot fail the last server",
            });
        }
        for v in victims {
            if !self.servers.contains(v.value()) {
                return Err(ClashError::UnknownServer { server: *v });
            }
        }
        let corpses: Vec<ClashServer> = victims
            .iter()
            .map(|v| self.servers.remove(v.value()).expect("membership checked"))
            .collect();
        for v in victims {
            self.forget_server(v.value());
            self.net.fail(*v);
            if self.trace_on {
                self.emit(TraceEventKind::ServerCrashed { server: v.value() });
            }
        }
        self.net.stabilize_direct();
        self.route_snapshot = None;

        let mut report = FailureReport {
            failed: victims[0],
            servers_failed: victims.len(),
            groups_reassigned: 0,
            groups_recovered: 0,
            groups_lost: 0,
            groups_deferred: 0,
            sources_lost: 0,
            queries_lost: 0,
            orphaned_parents: 0,
            repaired_right_children: 0,
        };
        self.recovery_active.set(true);
        let outcome = if self.replication_enabled() {
            self.recover_from_replicas(&corpses, &mut report)
        } else {
            self.recover_from_oracle(&corpses, &mut report)
        };
        self.recovery_active.set(false);
        outcome?;
        // Failure-triggered re-replication: survivors whose holders died
        // with the victims re-seed now, not a load-check period later —
        // this is what keeps *sequential* single crashes lossless.
        self.replica_full_sync = true;
        self.sync_replicas();
        self.debug_verify();
        Ok(report)
    }

    /// The historical `r = 0` recovery: re-home every lost group onto its
    /// new `Map()` owner with ledgers read from the global state — the
    /// oracle crutch the paper's hand-wave about DHT replication amounts
    /// to. Kept verbatim (single-victim message accounting is bit-for-bit
    /// the pre-replication behavior); its oracle reads are counted.
    fn recover_from_oracle(
        &mut self,
        corpses: &[ClashServer],
        report: &mut FailureReport,
    ) -> Result<(), ClashError> {
        for corpse in corpses {
            let victim = corpse.id();
            let lost_groups: Vec<Prefix> =
                corpse.table().active_groups().map(|e| e.group).collect();
            for group in lost_groups {
                let new_owner = self.map_group(group);
                debug_assert_ne!(new_owner, victim);
                self.servers
                    .get_mut(new_owner.value())
                    .expect("ring member")
                    .bootstrap_root(group)?;
                self.mark_dirty(new_owner.value());
                self.global_index.insert(group, new_owner);
                let ledger = self.ledgers.entry(group).or_default();
                self.msgs.state_transfer_messages += ledger.queries.len() as u64;
                self.msgs.redirect_messages += ledger.sources.len() as u64;
                self.push_group_load(group)?;
                report.groups_reassigned += 1;
                report.groups_recovered += 1;
            }
        }
        // Repair dangling pointers on every survivor, resolving right
        // children against the post-reassignment oracle.
        let ids: Vec<u64> = self.servers.ids().collect();
        for corpse in corpses {
            let victim = corpse.id();
            for &sid in &ids {
                let index = &self.global_index;
                let active = &self.recovery_active;
                let reads = &self.oracle_reads_in_recovery;
                let server = self.servers.get_mut(sid).expect("snapshotted id");
                let (orphans, repairs) =
                    server.table_mut().repair_after_peer_failure(victim, |g| {
                        if active.get() {
                            reads.set(reads.get() + 1);
                        }
                        index.get(g).copied()
                    });
                report.orphaned_parents += orphans;
                report.repaired_right_children += repairs;
                if orphans > 0 {
                    // Orphaning turns `parent = victim` entries into
                    // roots, which stop owing reports.
                    self.mark_dirty(sid);
                }
            }
        }
        Ok(())
    }

    /// Replica-based recovery (`r ≥ 1`): promote the first live successor
    /// replica of every lost group. The corpses' tables are consulted
    /// only for truthful post-mortem *accounting* (which groups existed —
    /// the harness keeps failed servers' state the way `SimNet` keeps
    /// failed nodes'); every byte of *recovered* state comes from the
    /// replicas, and the oracle-read counter proves the index is never
    /// consulted.
    fn recover_from_replicas(
        &mut self,
        corpses: &[ClashServer],
        report: &mut FailureReport,
    ) -> Result<(), ClashError> {
        let mut lost: Vec<(Prefix, ServerId)> = Vec::new();
        for corpse in corpses {
            lost.extend(
                corpse
                    .table()
                    .active_groups()
                    .map(|e| (e.group, corpse.id())),
            );
        }
        lost.sort();
        let membership = self.client_membership(lost.iter().map(|&(g, _)| g));
        let single_crash = corpses.len() == 1;
        let mut promotions: BTreeMap<Prefix, ServerId> = BTreeMap::new();
        for &(group, old_owner) in &lost {
            if let Some(new_owner) =
                self.promote_or_defer(group, old_owner, single_crash, &membership, report)?
            {
                promotions.insert(group, new_owner);
            }
        }
        // Pointer repair resolves right children via the promotion
        // announcements — local knowledge from this recovery, never the
        // oracle. Deferred and vanished groups resolve to nothing, so the
        // dangling pointer clears.
        let ids: Vec<u64> = self.servers.ids().collect();
        for corpse in corpses {
            let victim = corpse.id();
            for &sid in &ids {
                let server = self.servers.get_mut(sid).expect("snapshotted id");
                let (orphans, repairs) = server
                    .table_mut()
                    .repair_after_peer_failure(victim, |g| promotions.get(&g).copied());
                report.orphaned_parents += orphans;
                report.repaired_right_children += repairs;
                if orphans > 0 {
                    self.mark_dirty(sid);
                }
            }
        }
        Ok(())
    }

    /// The surviving client registry for `groups`: which sources and
    /// queries still point at each (clients outlive their servers; their
    /// attachments may not). One scan per recovery event.
    #[allow(clippy::type_complexity)]
    fn client_membership(
        &self,
        groups: impl Iterator<Item = Prefix>,
    ) -> BTreeMap<Prefix, (Vec<u64>, Vec<u64>)> {
        let mut map: BTreeMap<Prefix, (Vec<u64>, Vec<u64>)> =
            groups.map(|g| (g, (Vec::new(), Vec::new()))).collect();
        for (&sid, rec) in &self.sources {
            if let Some(slot) = map.get_mut(&rec.group) {
                slot.0.push(sid);
            }
        }
        for (&qid, rec) in &self.queries {
            if let Some(slot) = map.get_mut(&rec.group) {
                slot.1.push(qid);
            }
        }
        map
    }

    /// Recovers one lost group from its successor replicas: the new
    /// `Map()` owner fetches state from the first live replica (in the
    /// dead owner's successor order) and promotes it as a new root. If
    /// every live holder is unreachable the recovery defers; if none
    /// exists the group is re-rooted empty and its clients are dropped,
    /// truthfully counted. Returns the group's new home, or `None` while
    /// deferred.
    fn promote_or_defer(
        &mut self,
        group: Prefix,
        old_owner: ServerId,
        single_crash: bool,
        membership: &BTreeMap<Prefix, (Vec<u64>, Vec<u64>)>,
        report: &mut FailureReport,
    ) -> Result<Option<ServerId>, ClashError> {
        let new_owner = self.map_group(group);
        // Candidates: survivors holding a replica whose owner is the dead
        // server that actively held the group. The owner filter is what
        // makes stale records (a split's invalidation deferred behind a
        // partition, a handoff's old copies) unpromotable: their owner is
        // never the crashed active holder.
        let mask = self.config.hash_space.mask();
        let mut candidates: Vec<ServerId> = self
            .servers
            .iter()
            .filter(|s| {
                s.replica_store()
                    .held(group)
                    .is_some_and(|r| r.owner == old_owner)
            })
            .map(ClashServer::id)
            .collect();
        candidates.sort_by_key(|h| h.value().wrapping_sub(old_owner.value()) & mask);
        let mut fetched: Option<ReplicaRecord> = None;
        for &holder in &candidates {
            if holder == new_owner {
                // The new ring owner already holds the replica — the
                // common single-crash case. Reading it crosses no
                // network, so nothing is charged (like every other local
                // delivery in the harness).
                fetched = self
                    .servers
                    .get(holder.value())
                    .expect("candidate holders are live")
                    .replica_store()
                    .held(group)
                    .cloned();
                break;
            }
            let mut lat = SimDuration::ZERO;
            if self.transport_send(new_owner, holder, MessageClass::ReplicateKeygroup, &mut lat)
                && self.transport_send(holder, new_owner, MessageClass::AckReplica, &mut lat)
            {
                self.msgs.replication_messages += 2;
                self.latency.replication.observe(ms(lat));
                fetched = self
                    .servers
                    .get(holder.value())
                    .expect("candidate holders are live")
                    .replica_store()
                    .held(group)
                    .cloned();
                break;
            }
        }
        let (live_sources, live_queries) = membership.get(&group).cloned().unwrap_or_default();
        match fetched {
            Some(rec) => {
                // Reconcile the replica's ledger against the surviving
                // client registry: attachments the replica never saw (a
                // partition starved its write-through) died with the
                // owner, and replica members that detached meanwhile drop
                // out.
                let sources: Vec<u64> = rec
                    .sources
                    .iter()
                    .copied()
                    .filter(|s| live_sources.contains(s))
                    .collect();
                let queries: Vec<u64> = rec
                    .queries
                    .iter()
                    .copied()
                    .filter(|q| live_queries.contains(q))
                    .collect();
                for s in &live_sources {
                    if !sources.contains(s) {
                        self.sources.remove(s);
                        report.sources_lost += 1;
                    }
                }
                for q in &live_queries {
                    if !queries.contains(q) {
                        self.queries.remove(q);
                        report.queries_lost += 1;
                    }
                }
                let rate: f64 = sources.iter().map(|s| self.sources[s].rate).sum();
                let ledger = GroupLedger {
                    sources: Arc::new(sources),
                    queries: Arc::new(queries),
                    rate,
                };
                let load = ledger.load();
                self.msgs.state_transfer_messages += ledger.queries.len() as u64;
                self.msgs.redirect_messages += ledger.sources.len() as u64;
                self.ledgers.insert(group, ledger);
                {
                    let server = self
                        .servers
                        .get_mut(new_owner.value())
                        .expect("ring member");
                    server.bootstrap_root(group)?;
                    server.set_group_load(group, load)?;
                }
                self.mark_dirty(new_owner.value());
                self.global_index.insert(group, new_owner);
                self.pending_recovery.remove(&group);
                // Re-protect immediately: the survivors of a burst must
                // not depend on the next sync period for their own cover.
                self.ensure_replicas(group, new_owner);
                report.groups_reassigned += 1;
                report.groups_recovered += 1;
                if self.trace_on {
                    self.emit(TraceEventKind::ReplicaPromoted {
                        failed: old_owner.value(),
                        group_bits: group.pattern(),
                        group_depth: group.depth(),
                        new_owner: new_owner.value(),
                    });
                }
                Ok(Some(new_owner))
            }
            None if !candidates.is_empty() => {
                // Replicas exist but every one sits behind the partition:
                // defer. The group leaves the active cover until a later
                // load check can reach a holder. A retry that stays
                // blocked (the entry already existed) bumps its wait
                // count and logs a distinct event carrying the blocking
                // partition's islands; a fresh deferral starts at zero.
                let prior = self.pending_recovery.get(&group).copied();
                let waited_checks = prior.map_or(0, |p| p.waited_checks + 1);
                self.recovery_deferred_max_wait =
                    self.recovery_deferred_max_wait.max(waited_checks);
                self.global_index.remove(group);
                self.pending_recovery.insert(
                    group,
                    PendingRecovery {
                        old_owner,
                        single_crash,
                        waited_checks,
                    },
                );
                report.groups_deferred += 1;
                if prior.is_some() {
                    self.recovery_retries_blocked += 1;
                    if self.trace_on {
                        let owner_island = self
                            .transport
                            .island_of(old_owner.value())
                            .map_or(u64::MAX, u64::from);
                        let coordinator_island = self
                            .transport
                            .island_of(new_owner.value())
                            .map_or(u64::MAX, u64::from);
                        self.emit(TraceEventKind::RecoveryRetryBlocked {
                            failed: old_owner.value(),
                            group_bits: group.pattern(),
                            group_depth: group.depth(),
                            owner_island,
                            coordinator_island,
                            waited_checks,
                        });
                    }
                } else if self.trace_on {
                    self.emit(TraceEventKind::RecoveryDeferred {
                        failed: old_owner.value(),
                        group_bits: group.pattern(),
                        group_depth: group.depth(),
                    });
                }
                Ok(None)
            }
            None => {
                // The owner and every replica are gone: the state is
                // genuinely lost. Re-root the group empty so the cover
                // stays a partition, and truthfully drop the stranded
                // clients — no silent resurrection from the oracle.
                for s in &live_sources {
                    self.sources.remove(s);
                }
                for q in &live_queries {
                    self.queries.remove(q);
                }
                report.sources_lost += live_sources.len();
                report.queries_lost += live_queries.len();
                self.ledgers.insert(group, GroupLedger::default());
                self.servers
                    .get_mut(new_owner.value())
                    .expect("ring member")
                    .bootstrap_root(group)?;
                self.mark_dirty(new_owner.value());
                self.global_index.insert(group, new_owner);
                self.pending_recovery.remove(&group);
                self.ensure_replicas(group, new_owner);
                report.groups_reassigned += 1;
                report.groups_lost += 1;
                if self.trace_on {
                    self.emit(TraceEventKind::RecoveryLost {
                        failed: old_owner.value(),
                        group_bits: group.pattern(),
                        group_depth: group.depth(),
                        clients_dropped: (live_sources.len() + live_queries.len()) as u64,
                    });
                }
                Ok(Some(new_owner))
            }
        }
    }

    /// Retries every partition-deferred recovery (run at each load
    /// check). A group whose replicas became reachable is promoted; one
    /// whose last holders have since died is re-rooted empty and counted
    /// lost.
    fn retry_deferred_recoveries(
        &mut self,
        report: &mut LoadCheckReport,
    ) -> Result<(), ClashError> {
        if self.pending_recovery.is_empty() {
            return Ok(());
        }
        // Deferred recoveries change the pending set (which the lease
        // expiry predicate reads) and re-home groups: the sync riding
        // this load check must run the full sweep.
        self.replica_full_sync = true;
        let pending: Vec<(Prefix, PendingRecovery)> = self
            .pending_recovery
            .iter()
            .map(|(&g, &p)| (g, p))
            .collect();
        let membership = self.client_membership(pending.iter().map(|&(g, _)| g));
        self.recovery_active.set(true);
        let mut tally = FailureReport {
            failed: pending[0].1.old_owner,
            servers_failed: 0,
            groups_reassigned: 0,
            groups_recovered: 0,
            groups_lost: 0,
            groups_deferred: 0,
            sources_lost: 0,
            queries_lost: 0,
            orphaned_parents: 0,
            repaired_right_children: 0,
        };
        let mut outcome = Ok(());
        for (group, rec) in pending {
            let lost_before = tally.groups_lost;
            let sources_before = tally.sources_lost;
            let queries_before = tally.queries_lost;
            self.recovery_retries += 1;
            match self.promote_or_defer(
                group,
                rec.old_owner,
                rec.single_crash,
                &membership,
                &mut tally,
            ) {
                Ok(Some(new_owner)) => {
                    if tally.groups_lost > lost_before {
                        report.recoveries_lost += 1;
                        if rec.single_crash {
                            report.recoveries_lost_single += 1;
                        }
                    } else {
                        report.recoveries_completed += 1;
                        if self.trace_on {
                            self.emit(TraceEventKind::RecoveryRetried {
                                group_bits: group.pattern(),
                                group_depth: group.depth(),
                                new_owner: new_owner.value(),
                            });
                        }
                    }
                    // Client losses surface even on a successful promotion
                    // (a partition-starved replica reconciles them away).
                    report.recovery_sources_lost += (tally.sources_lost - sources_before) as u64;
                    report.recovery_queries_lost += (tally.queries_lost - queries_before) as u64;
                }
                Ok(None) => {} // still deferred
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        self.recovery_active.set(false);
        outcome
    }

    /// Ground-truth range scan: every active group intersecting `range`
    /// and its owner, in key order (no messages).
    pub fn oracle_range(&self, range: Prefix) -> Vec<(Prefix, ServerId)> {
        self.count_oracle_read();
        self.global_index
            .intersecting(range)
            .into_iter()
            .map(|(p, &s)| (p, s))
            .collect()
    }

    /// Distributed range query (the §7 extension): locates the group
    /// containing the range start, then walks right through consecutive
    /// groups until the range is covered, counting the protocol cost of
    /// each hop. Because CLASH clusters prefix ranges, the walk usually
    /// touches very few servers — the paper's argument for why range
    /// queries get *cheaper* under CLASH than under a scattering DHT.
    ///
    /// # Errors
    ///
    /// Propagates locate errors; returns [`ClashError::InvalidConfig`]
    /// if the walk exceeds 4096 groups (guard against mis-use on the
    /// fine-grained baseline).
    pub fn range_query(&mut self, range: Prefix) -> Result<RangeQueryResult, ClashError> {
        let before = self.msgs;
        let mut groups: Vec<(Prefix, ServerId)> = Vec::new();
        let mut key = range.min_key();
        let range_end = range.max_key().bits();
        loop {
            if groups.len() >= 4096 {
                return Err(ClashError::InvalidConfig {
                    reason: "range query would visit more than 4096 groups",
                });
            }
            let placement = self.locate(key)?;
            groups.push((placement.group, placement.server));
            let group_end = placement.group.max_key().bits();
            // Done when the found group covers the rest of the range.
            if group_end >= range_end {
                break;
            }
            key = Key::new(group_end + 1, self.config.key_width)
                .expect("group end below range end is in range");
        }
        let mut servers: Vec<ServerId> = groups.iter().map(|&(_, s)| s).collect();
        servers.sort_unstable();
        servers.dedup();
        let after = self.msgs;
        Ok(RangeQueryResult {
            distinct_servers: servers.len(),
            groups,
            probes: (after.probes - before.probes) as u32,
            messages: after.control_messages() - before.control_messages(),
        })
    }

    /// Server-assisted depth determination (§5's closing note: "this
    /// estimation of the correct depth can be performed … by a server
    /// that uses this algorithm to query its peer servers, rather than
    /// assigning the lookup burden to the client"). The client pays one
    /// round trip to a random proxy server; the proxy runs the search.
    ///
    /// # Errors
    ///
    /// See [`ClashCluster::locate`].
    pub fn locate_assisted(&mut self, key: Key) -> Result<Placement, ClashError> {
        // Client → proxy request and proxy → client response.
        self.msgs.probe_messages += 2;
        // The proxy runs the standard search; probes route from the proxy
        // (already how locate() accounts its hops).
        self.locate(key)
    }

    /// Verifies cluster-wide consistency between the oracle, the server
    /// tables and the ledgers. Cheap enough for tests; called after every
    /// load check in debug builds.
    ///
    /// On failure, the flight recorder's tail is dumped to stderr first
    /// (when a sink is installed), so the panic arrives with the protocol
    /// decisions that led to it.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency (these are bugs, not runtime errors).
    pub fn verify_consistency(&self) {
        self.run_with_trace_dump(|c| c.verify_consistency_inner());
    }

    /// Runs `f`; if it panics, dumps the flight-recorder tail to stderr
    /// and re-raises the original panic payload. Pure observation — the
    /// panic (message and all) continues exactly as it would have.
    fn run_with_trace_dump(&self, f: impl FnOnce(&Self)) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self)));
        if let Err(payload) = result {
            self.dump_trace_tail();
            std::panic::resume_unwind(payload);
        }
    }

    fn verify_consistency_inner(&self) {
        // 1. Global index entries are active on their owners.
        for (group, &owner) in self.global_index.iter() {
            let server = self.server(owner).expect("owner exists");
            let entry = server
                .table()
                .entry(group)
                .unwrap_or_else(|| panic!("{owner} lacks entry for {group}"));
            assert!(entry.active, "{group} on {owner} is not active");
        }
        // 2. Every active entry is in the global index.
        let mut total_active = 0;
        for server in self.servers.iter() {
            server.table().check_invariants().expect("table invariants");
            for e in server.table().active_groups() {
                total_active += 1;
                assert_eq!(
                    self.global_index.get(e.group),
                    Some(&server.id()),
                    "active {} on {} missing from oracle",
                    e.group,
                    server.id()
                );
            }
        }
        assert_eq!(total_active, self.global_index.len());
        // 3. In CLASH mode the active groups — together with any groups
        // whose crash recovery is deferred behind a partition — partition
        // the key space.
        if self.config.splitting_enabled {
            let mut cover = self.global_cover();
            for &g in self.pending_recovery.keys() {
                cover
                    .insert(g)
                    .expect("deferred groups must be disjoint from the active cover");
            }
            assert!(
                cover.is_partition(),
                "active groups (plus deferred recoveries) do not partition the key space"
            );
        }
        // 4. Ledger membership matches member records.
        for (group, ledger) in &self.ledgers {
            for sid in ledger.sources.iter() {
                assert_eq!(&self.sources[sid].group, group);
            }
            for qid in ledger.queries.iter() {
                assert_eq!(&self.queries[qid].group, group);
            }
        }
        // 5. Every table entry sits on its group's current Map() owner —
        // the placement invariant that membership handoffs (join/leave)
        // and crash recovery must all preserve.
        for server in self.servers.iter() {
            for e in server.table().entries() {
                assert_eq!(
                    self.map_group(e.group),
                    server.id(),
                    "entry {} sits on {} but Map() says {}",
                    e.group,
                    server.id(),
                    self.map_group(e.group)
                );
            }
        }
        // 6. Replication bookkeeping: an owner never holds a copy of its
        // own active group, and every *live* holder its registry names
        // holds the record for the right owner with the current ledger
        // (write-through keeps registered holders exact; only
        // unregistered copies may go stale). A registry may transiently
        // name a dead holder — a crash between syncs — which the next
        // maintenance round prunes.
        if self.replication_enabled() {
            for (group, &owner) in self.global_index.iter() {
                let owner_server = self.server(owner).expect("owner exists");
                assert!(
                    owner_server.replica_store().held(group).is_none(),
                    "{owner} owns {group} and also holds a replica of it"
                );
                let ledger = self.ledgers.get(&group);
                for &holder in owner_server.replica_store().placed(group) {
                    let Some(holder_server) = self.server(holder) else {
                        continue; // crashed holder, pruned at next sync
                    };
                    let rec = holder_server
                        .replica_store()
                        .held(group)
                        .unwrap_or_else(|| panic!("{holder} lost its replica of {group}"));
                    assert_eq!(rec.owner, owner, "replica of {group} names a stale owner");
                    let (sources, queries) = ledger
                        .map(|l| (l.sources.as_slice(), l.queries.as_slice()))
                        .unwrap_or((&[], &[]));
                    assert_eq!(
                        rec.sources.as_slice(),
                        sources,
                        "stale replica ledger for {group}"
                    );
                    assert_eq!(
                        rec.queries.as_slice(),
                        queries,
                        "stale replica ledger for {group}"
                    );
                }
            }
        }
    }

    /// Debug-build consistency sweep, sampled by `CLASH_VERIFY_EVERY`:
    /// with the default of 1 every call verifies (the historical
    /// behavior); `N > 1` verifies every Nth call so debug-build runs at
    /// thousands of servers stay feasible; `0` disables the sweep.
    #[cfg(debug_assertions)]
    fn debug_verify(&self) {
        if self.verify_every == 0 {
            return;
        }
        let left = self.verify_countdown.get();
        if left > 1 {
            self.verify_countdown.set(left - 1);
            return;
        }
        self.verify_countdown.set(self.verify_every);
        self.verify_consistency();
        self.run_with_trace_dump(|c| c.verify_candidate_indices());
    }

    #[cfg(not(debug_assertions))]
    fn debug_verify(&self) {}
}

enum MergeOutcome {
    Merged(MergeRecord),
    Refused,
    NoCandidate,
}

impl std::fmt::Debug for ClashCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClashCluster")
            .field("servers", &self.server_count())
            .field("groups", &self.global_index.len())
            .field("sources", &self.sources.len())
            .field("queries", &self.queries.len())
            .field("msgs", &self.msgs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_keyspace::key::KeyWidth;

    fn key(bits: u64) -> Key {
        Key::from_bits_truncated(bits, KeyWidth::new(8).unwrap())
    }

    fn cluster(n: usize) -> ClashCluster {
        ClashCluster::new(ClashConfig::small_test(), n, 1).unwrap()
    }

    // Pinned by `figure5_protocol_accounting_pinned`: the seed-1
    // 8-server hot-workload run performs 2 splits, both placed remotely
    // (2 ACCEPT_KEYGROUPs, 0 self-mapped retries), and its corrected
    // protocol accounting is 2·168 probes + 2 accepts + 68 redirects.
    const PIN_SPLITS: u64 = 2;
    const PIN_ACCEPTS: u64 = 2;
    const PIN_RETRIES: u64 = 0;
    const PIN_PROTOCOL: u64 = 406;

    #[test]
    fn bootstrap_creates_partition() {
        let c = cluster(8);
        let cover = c.global_cover();
        assert_eq!(cover.len(), 4); // initial depth 2 → 4 groups
        assert!(cover.is_partition());
        c.verify_consistency();
    }

    #[test]
    fn locate_agrees_with_oracle() {
        let mut c = cluster(8);
        for bits in 0..=255u64 {
            let k = key(bits);
            let placement = c.locate(k).unwrap();
            let (oracle_server, oracle_group) = c.oracle_locate(k).unwrap();
            assert_eq!(placement.server, oracle_server, "key {k}");
            assert_eq!(placement.group, oracle_group, "key {k}");
        }
    }

    #[test]
    fn attach_detach_source_roundtrip() {
        let mut c = cluster(8);
        let p = c.attach_source(1, key(0b1011_0100), 2.0).unwrap();
        assert_eq!(c.source_count(), 1);
        let owner = c.server(p.server).unwrap();
        assert!((owner.current_load() - 2.0).abs() < 1e-9);
        c.detach_source(1).unwrap();
        assert_eq!(c.source_count(), 0);
        let owner = c.server(p.server).unwrap();
        assert_eq!(owner.current_load(), 0.0);
        c.verify_consistency();
    }

    #[test]
    fn duplicate_source_id_rejected() {
        let mut c = cluster(8);
        c.attach_source(1, key(3), 1.0).unwrap();
        assert!(c.attach_source(1, key(5), 1.0).is_err());
        assert!(c.detach_source(99).is_err());
    }

    #[test]
    fn overload_triggers_split_and_redistribution() {
        let mut c = cluster(8);
        // Pour 200 units of rate into one group (capacity 100, overload 90).
        for i in 0..100 {
            // Keys spread within the 00* group (depth 2).
            c.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        let report = c.run_load_check().unwrap();
        assert!(!report.splits.is_empty(), "overload must cause splits");
        c.verify_consistency();
        assert!(c.global_cover().is_partition());
        // After splitting, no server stays overloaded (load was divisible).
        let max_load = c
            .server_loads()
            .into_iter()
            .map(|(_, l)| l)
            .fold(0.0f64, f64::max);
        assert!(
            max_load <= c.config().overload_threshold() + 1e-9,
            "max load {max_load} still above threshold"
        );
        // Depth grew beyond the initial depth.
        let (_, _, max_depth) = c.depth_stats().unwrap();
        assert!(max_depth > 2);
    }

    #[test]
    fn locate_still_correct_after_splits() {
        let mut c = cluster(8);
        for i in 0..100 {
            c.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        c.run_load_check().unwrap();
        for bits in 0..=255u64 {
            let k = key(bits);
            let placement = c.locate(k).unwrap();
            let (oracle_server, oracle_group) = c.oracle_locate(k).unwrap();
            assert_eq!(placement.server, oracle_server, "key {k}");
            assert_eq!(placement.group, oracle_group, "key {k}");
            // Depth search stays within the paper's bound.
            assert!(placement.probes <= 5, "{} probes for {k}", placement.probes);
        }
    }

    #[test]
    fn cooling_triggers_merge() {
        let mut c = cluster(8);
        for i in 0..100 {
            c.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        c.run_load_check().unwrap();
        let depth_after_split = c.depth_stats().unwrap().2;
        assert!(depth_after_split > 2);
        // Cool down: detach everything.
        for i in 0..100 {
            c.detach_source(i).unwrap();
        }
        // Several check periods let reports flow and merges cascade.
        for _ in 0..12 {
            c.run_load_check().unwrap();
        }
        c.verify_consistency();
        let (_, _, max_depth) = c.depth_stats().unwrap();
        assert!(
            max_depth < depth_after_split,
            "consolidation should reduce depth: {max_depth} vs {depth_after_split}"
        );
        assert!(c.global_cover().is_partition());
    }

    #[test]
    fn merges_never_collapse_roots() {
        let mut c = cluster(8);
        // Nothing attached: everything is cold. Run many checks.
        for _ in 0..5 {
            c.run_load_check().unwrap();
        }
        let (min_depth, _, _) = c.depth_stats().unwrap();
        assert_eq!(
            min_depth, 2,
            "bootstrap roots must not merge above the initial depth"
        );
        assert_eq!(c.global_cover().len(), 4);
    }

    #[test]
    fn dht_baseline_never_splits() {
        let mut c = ClashCluster::new(ClashConfig::dht_baseline(2), 8, 1).unwrap();
        // dht_baseline(2) on the paper config has 24-bit keys; use such keys.
        let w = KeyWidth::PAPER;
        for i in 0..100u64 {
            let k = Key::from_bits_truncated(i * 7919, w);
            c.attach_source(i, k, 50.0).unwrap();
        }
        let report = c.run_load_check().unwrap();
        assert!(report.splits.is_empty());
        assert!(report.merges.is_empty());
        // Placement always at the fixed depth.
        let p = c.locate(Key::from_bits_truncated(12345, w)).unwrap();
        assert_eq!(p.depth, 2);
        assert_eq!(p.probes, 1);
    }

    #[test]
    fn baseline_groups_dematerialize_when_empty() {
        let mut c = ClashCluster::new(ClashConfig::dht_baseline(12), 8, 1).unwrap();
        let w = KeyWidth::PAPER;
        let k1 = Key::from_bits_truncated(0xABCDEF, w);
        let p = c.attach_source(1, k1, 1.0).unwrap();
        assert!(c.server(p.server).unwrap().table().active_count() >= 1);
        c.detach_source(1).unwrap();
        // The lazily created group disappears with its last object.
        assert_eq!(c.server(p.server).unwrap().table().active_count(), 0);
        assert!(c.oracle_locate(k1).is_none());
        // Re-attach works fine afterwards.
        c.attach_source(2, k1, 1.0).unwrap();
        assert!(c.oracle_locate(k1).is_some());
    }

    #[test]
    fn move_source_with_rate_changes_rate() {
        let mut c = cluster(8);
        c.attach_source(5, key(0b0000_0001), 1.0).unwrap();
        let p = c
            .move_source_with_rate(5, key(0b0000_0010), Some(2.0))
            .unwrap();
        let owner = c.server(p.server).unwrap();
        assert!((owner.current_load() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn move_source_uses_hint_and_keeps_rate() {
        let mut c = cluster(8);
        c.attach_source(7, key(0b0000_0001), 2.0).unwrap();
        let before = c.message_stats();
        let p = c.move_source(7, key(0b0000_0010)).unwrap();
        let after = c.message_stats();
        // Same group (same 2-bit prefix): the hint resolves in one probe.
        assert_eq!(after.probes - before.probes, 1);
        let owner = c.server(p.server).unwrap();
        assert!((owner.current_load() - 2.0).abs() < 1e-9);
        c.verify_consistency();
    }

    #[test]
    fn queries_count_toward_load_and_migrate() {
        let mut c = cluster(8);
        for q in 0..32 {
            c.attach_query(q, key(q % 64)).unwrap();
        }
        assert_eq!(c.query_count(), 32);
        // Heat the same region with sources to force splits; queries must
        // migrate with their groups (counted as state transfer).
        for i in 0..100 {
            c.attach_source(1000 + i, key(i % 64), 2.0).unwrap();
        }
        let before = c.message_stats().state_transfer_messages;
        c.run_load_check().unwrap();
        let after = c.message_stats().state_transfer_messages;
        assert!(after > before, "query migration must be accounted");
        c.verify_consistency();
    }

    #[test]
    fn message_stats_accumulate_sensibly() {
        let mut c = cluster(8);
        c.attach_source(1, key(9), 1.0).unwrap();
        let stats = c.message_stats();
        assert!(stats.probes >= 1);
        assert!(stats.probe_messages >= stats.probes);
        assert_eq!(stats.locates, 1);
        assert!(stats.control_messages() >= stats.probe_messages);
        c.reset_message_stats();
        assert_eq!(c.message_stats(), MessageStats::default());
    }

    #[test]
    fn single_server_cluster_works() {
        let mut c = cluster(1);
        let p = c.attach_source(1, key(42), 5.0).unwrap();
        assert_eq!(p.probes, 1); // everything self-maps
                                 // Overload it: splits happen but stay local (self-mapped).
        for i in 2..60 {
            c.attach_source(i, key(i % 64), 3.0).unwrap();
        }
        c.run_load_check().unwrap();
        c.verify_consistency();
        assert!(c.global_cover().is_partition());
    }

    #[test]
    fn fail_server_reassigns_groups_and_repairs_pointers() {
        let mut c = cluster(8);
        // Heat one region so splits create parent/right-child pointers.
        for i in 0..100 {
            c.attach_source(i, key(0b1100_0000 | (i % 64)), 2.0)
                .unwrap();
        }
        c.run_load_check().unwrap();
        let total_rate_before: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        // Kill the busiest server.
        let victim = c
            .server_loads()
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)
            .unwrap();
        let report = c.fail_server(victim).unwrap();
        assert!(report.groups_reassigned > 0);
        // All invariants hold; the cover still partitions the space.
        c.verify_consistency();
        assert!(c.global_cover().is_partition());
        // No load was lost in the reassignment.
        let total_rate_after: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        assert!((total_rate_after - total_rate_before).abs() < 1e-6);
        // Lookups still work for every key and never land on the corpse.
        for bits in (0..256u64).step_by(5) {
            let placement = c.locate(key(bits)).unwrap();
            assert_ne!(placement.server, victim);
            let (oracle_server, _) = c.oracle_locate(key(bits)).unwrap();
            assert_eq!(placement.server, oracle_server);
        }
        // The system keeps operating: further load checks are fine.
        c.run_load_check().unwrap();
        c.verify_consistency();
    }

    #[test]
    fn fail_every_server_but_one() {
        let mut c = cluster(6);
        for i in 0..40 {
            c.attach_source(i, key(i * 6), 1.0).unwrap();
        }
        let mut ids = c.server_ids();
        while ids.len() > 1 {
            let victim = ids.pop().unwrap();
            c.fail_server(victim).unwrap();
            c.verify_consistency();
            assert!(c.global_cover().is_partition());
            ids = c.server_ids();
        }
        // Everything now lives on the lone survivor.
        let survivor = c.server_ids()[0];
        for bits in (0..256u64).step_by(17) {
            assert_eq!(c.locate(key(bits)).unwrap().server, survivor);
        }
        assert!(matches!(
            c.fail_server(survivor),
            Err(ClashError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn range_query_walks_the_cover() {
        let mut c = cluster(8);
        for i in 0..100 {
            c.attach_source(i, key(0b0100_0000 | (i % 64)), 2.0)
                .unwrap();
        }
        c.run_load_check().unwrap();
        // Query the heated quadrant: multiple groups, oracle-equal.
        let range = Prefix::parse("01*", 8).unwrap();
        let result = c.range_query(range).unwrap();
        let oracle = c.oracle_range(range);
        assert_eq!(result.groups, oracle);
        assert!(result.groups.len() > 1, "heated range spans groups");
        assert!(result.probes >= result.groups.len() as u32);
        // A cold range inside one group: a single stop.
        let cold = Prefix::parse("101010*", 8).unwrap();
        let result = c.range_query(cold).unwrap();
        assert_eq!(result.groups.len(), 1);
        assert_eq!(result.distinct_servers, 1);
    }

    #[test]
    fn range_query_full_space() {
        let mut c = cluster(8);
        let root = Prefix::root(c.config().key_width);
        let result = c.range_query(root).unwrap();
        assert_eq!(result.groups.len(), 4, "initial cover has 4 groups");
        let partition: Vec<Prefix> = result.groups.iter().map(|&(g, _)| g).collect();
        let mut cover = clash_keyspace::cover::PrefixCover::new(c.config().key_width);
        for g in partition {
            cover.insert(g).unwrap();
        }
        assert!(cover.is_partition());
    }

    #[test]
    fn assisted_locate_matches_client_locate() {
        let mut c = cluster(8);
        for i in 0..60 {
            c.attach_source(i, key(i * 4), 2.0).unwrap();
        }
        c.run_load_check().unwrap();
        for bits in (0..256u64).step_by(11) {
            let assisted = c.locate_assisted(key(bits)).unwrap();
            let (oracle_server, oracle_group) = c.oracle_locate(key(bits)).unwrap();
            assert_eq!(assisted.server, oracle_server);
            assert_eq!(assisted.group, oracle_group);
        }
    }

    #[test]
    fn join_server_hands_off_groups_and_keeps_oracle() {
        let mut c = cluster(6);
        for i in 0..100 {
            c.attach_source(i, key(i % 128), 2.0).unwrap();
        }
        c.run_load_check().unwrap();
        let total_rate_before: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        let groups_before = c.global_cover().len();
        let mut joined = Vec::new();
        for j in 0..4 {
            let report = c.join_random_server().unwrap();
            joined.push(report.joined);
            assert_eq!(c.server_count(), 7 + j);
            c.verify_consistency();
            assert!(c.global_cover().is_partition());
        }
        // With 4 joins against 6 servers, at least one join landed inside
        // a populated arc and received entries.
        let received: usize = joined
            .iter()
            .map(|&id| c.server(id).unwrap().table().len())
            .sum();
        assert!(received > 0, "no join received any entries");
        assert!(c.message_stats().joins == 4);
        assert!(c.message_stats().handoff_messages > 0);
        // Nothing was lost or duplicated in the handoffs.
        assert_eq!(c.global_cover().len(), groups_before);
        let total_rate_after: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        assert!((total_rate_after - total_rate_before).abs() < 1e-6);
        // Lookups agree with the oracle from any entry point.
        for bits in (0..256u64).step_by(7) {
            let placement = c.locate(key(bits)).unwrap();
            let (oracle_server, oracle_group) = c.oracle_locate(key(bits)).unwrap();
            assert_eq!(placement.server, oracle_server);
            assert_eq!(placement.group, oracle_group);
            assert!(placement.probes <= 5);
        }
        // The system keeps adapting after the joins.
        c.run_load_check().unwrap();
        c.verify_consistency();
    }

    #[test]
    fn join_rejects_duplicate_id() {
        let mut c = cluster(4);
        let existing = c.server_ids()[0];
        assert!(matches!(
            c.join_server(existing),
            Err(ClashError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn leave_server_drains_gracefully() {
        let mut c = cluster(8);
        for i in 0..100 {
            c.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        c.run_load_check().unwrap();
        let total_rate_before: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        // Drain the busiest server — the hardest case.
        let victim = c
            .server_loads()
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)
            .unwrap();
        let entries_held = c.server(victim).unwrap().table().len();
        let report = c.leave_server(victim).unwrap();
        assert_eq!(report.entries_transferred, entries_held);
        assert!(report.groups_transferred <= report.entries_transferred);
        assert_eq!(c.server_count(), 7);
        assert_eq!(c.message_stats().leaves, 1);
        c.verify_consistency();
        assert!(c.global_cover().is_partition());
        // Unlike a crash, the drain loses no load and no tree structure.
        let total_rate_after: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        assert!((total_rate_after - total_rate_before).abs() < 1e-6);
        for bits in (0..256u64).step_by(5) {
            let placement = c.locate(key(bits)).unwrap();
            assert_ne!(placement.server, victim);
            let (oracle_server, _) = c.oracle_locate(key(bits)).unwrap();
            assert_eq!(placement.server, oracle_server);
        }
        c.run_load_check().unwrap();
        c.verify_consistency();
    }

    #[test]
    fn drain_preserves_merge_ability_where_crash_cannot() {
        // Build the same deep tree twice; drain the deepest holder in one
        // cluster, crash it in the other. After cooling, the drained
        // cluster consolidates back to the bootstrap roots (the interior
        // entries survived the move); the crashed one is left with
        // orphaned roots that can never merge above the break.
        let build = || {
            let mut c = ClashCluster::new(
                ClashConfig {
                    capacity: 60.0,
                    ..ClashConfig::small_test()
                },
                10,
                5,
            )
            .unwrap();
            for i in 0..120u64 {
                c.attach_source(i, key(0b0110_0000 | (i % 32)), 2.0)
                    .unwrap();
            }
            for _ in 0..4 {
                c.run_load_check().unwrap();
            }
            c
        };
        let deepest_owner = |c: &ClashCluster| {
            c.server_ids()
                .into_iter()
                .max_by_key(|&id| {
                    c.server(id)
                        .unwrap()
                        .depth_stats()
                        .map_or(0, |(_, _, max)| max)
                })
                .unwrap()
        };
        let cool = |c: &mut ClashCluster| {
            for i in 0..120u64 {
                c.detach_source(i).unwrap();
            }
            for _ in 0..16 {
                c.run_load_check().unwrap();
            }
        };

        let mut drained = build();
        assert!(drained.depth_stats().unwrap().2 > 4);
        drained.leave_server(deepest_owner(&drained)).unwrap();
        cool(&mut drained);
        assert_eq!(
            drained.depth_stats().unwrap().2,
            2,
            "drained cluster must consolidate fully back to the roots"
        );

        let mut crashed = build();
        crashed.fail_server(deepest_owner(&crashed)).unwrap();
        cool(&mut crashed);
        assert!(
            crashed.depth_stats().unwrap().2 > 2,
            "crash orphans subtrees into roots, blocking full consolidation"
        );
    }

    #[test]
    fn interleaved_joins_and_leaves_under_load() {
        let mut c = cluster(4);
        let mut next = 0u64;
        for round in 0..6u32 {
            for _ in 0..20 {
                c.attach_source(next, key((next * 13) % 256), 1.5).unwrap();
                next += 1;
            }
            c.run_load_check().unwrap();
            if round % 2 == 0 {
                c.join_random_server().unwrap();
            } else if c.server_count() > 2 {
                let ids = c.server_ids();
                c.leave_server(ids[(round as usize) % ids.len()]).unwrap();
            }
            c.verify_consistency();
            assert!(c.global_cover().is_partition());
            for bits in (0..256u64).step_by(31) {
                let placement = c.locate(key(bits)).unwrap();
                let (oracle_server, _) = c.oracle_locate(key(bits)).unwrap();
                assert_eq!(placement.server, oracle_server);
            }
        }
        assert_eq!(c.source_count(), 120);
        let total: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        assert!((total - 120.0 * 1.5).abs() < 1e-6);
    }

    #[test]
    fn leave_last_server_rejected() {
        let mut c = cluster(1);
        let id = c.server_ids()[0];
        assert!(matches!(
            c.leave_server(id),
            Err(ClashError::InvalidConfig { .. })
        ));
        let ghost = ServerId::new(0xDEAD, c.config().hash_space);
        let mut c = cluster(2);
        assert!(matches!(
            c.leave_server(ghost),
            Err(ClashError::UnknownServer { .. })
        ));
    }

    #[test]
    fn local_right_child_merge_conserves_load() {
        // Single server: every split self-maps, so try_merge takes the
        // local-right-child path (merge_group with GroupLoad::zero(), the
        // real load read from the local entry). Total load must be
        // conserved across those merges.
        let mut c = cluster(1);
        for i in 0..40 {
            c.attach_source(i, key(i % 64), 3.0).unwrap();
        }
        c.run_load_check().unwrap();
        assert!(c.message_stats().splits > 0);
        // Cool *partially*: the survivors' rates must survive the merges.
        for i in 0..30 {
            c.detach_source(i).unwrap();
        }
        let total_before: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        assert!(total_before > 0.0);
        let merges_before = c.message_stats().merges;
        let merge_msgs_before = c.message_stats().merge_messages;
        for _ in 0..12 {
            c.run_load_check().unwrap();
        }
        assert!(
            c.message_stats().merges > merges_before,
            "cooling must trigger local merges"
        );
        assert_eq!(
            c.message_stats().merge_messages,
            merge_msgs_before,
            "both children are local: merges must be message-free"
        );
        let total_after: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        assert!(
            (total_after - total_before).abs() < 1e-9,
            "local merge lost load: {total_before} -> {total_after}"
        );
        c.verify_consistency();
    }

    #[test]
    fn split_accounting_distinguishes_remote_and_self_mapped() {
        // Single server: every placement self-maps, so no ACCEPT_KEYGROUP
        // is ever sent; the corrected accounting must not charge any.
        let mut c = cluster(1);
        for i in 2..60 {
            c.attach_source(i, key(i % 64), 3.0).unwrap();
        }
        c.run_load_check().unwrap();
        let s = c.message_stats();
        assert!(s.splits > 0);
        assert_eq!(s.accept_keygroups, 0, "self-mapped splits send nothing");
        assert!(s.self_mapped_retries > 0, "retries must be counted apart");
        assert_eq!(
            s.protocol_control_messages(),
            2 * s.probes + s.merge_messages + s.report_messages + s.redirect_messages,
            "Figure-5 protocol accounting must not charge self-mapped splits"
        );

        // Multi-server: every split is remote or retried; the counters
        // partition the splits (terminal self-maps are the remainder).
        let mut c = cluster(8);
        for i in 0..100 {
            c.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        c.run_load_check().unwrap();
        let s = c.message_stats();
        assert!(s.accept_keygroups > 0);
        assert!(
            s.accept_keygroups + s.self_mapped_retries <= s.splits,
            "every split is a remote placement, a retry, or a terminal self-map"
        );
    }

    #[test]
    fn figure5_protocol_accounting_pinned() {
        // Regression pin for the corrected Figure-5 accounting: the seed-1
        // 8-server cluster under the standard hot workload. These counts
        // changed when self-mapped retries stopped being charged as
        // ACCEPT_KEYGROUPs; any further drift is a protocol change and
        // must be justified.
        let mut c = cluster(8);
        for i in 0..100 {
            c.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        c.run_load_check().unwrap();
        let s = c.message_stats();
        assert_eq!(
            (s.splits, s.accept_keygroups, s.self_mapped_retries),
            (PIN_SPLITS, PIN_ACCEPTS, PIN_RETRIES),
            "split accounting drifted: {s:?}"
        );
        assert_eq!(
            s.protocol_control_messages(),
            PIN_PROTOCOL,
            "protocol_control_messages drifted: {s:?}"
        );
    }

    #[test]
    fn transport_swap_preserves_protocol_behavior() {
        // The same seed and workload through the instant transport and a
        // lossy WAN transport must produce identical protocol decisions
        // and MessageStats: the transport charges time, it never perturbs
        // the protocol's own RNG draws.
        use clash_transport::{LinkPolicy, LinkTransport};
        let run = |transport: Box<dyn clash_transport::Transport>| {
            let mut c =
                ClashCluster::with_transport(ClashConfig::small_test(), 8, 1, transport).unwrap();
            for i in 0..100 {
                c.attach_source(i, key(i % 64), 2.0).unwrap();
            }
            c.run_load_check().unwrap();
            for i in 0..50 {
                c.detach_source(i).unwrap();
            }
            for _ in 0..6 {
                c.run_load_check().unwrap();
            }
            c
        };
        let instant = run(Box::new(clash_transport::InstantTransport::new()));
        let lossy = run(Box::new(LinkTransport::new(LinkPolicy::lossy_wan(0.1), 77)));
        assert_eq!(instant.message_stats(), lossy.message_stats());
        assert_eq!(
            instant.global_cover().len(),
            lossy.global_cover().len(),
            "identical split/merge decisions"
        );
        // But the transports tell very different time stories.
        assert_eq!(instant.transport_stats().total_latency_us, 0);
        assert!(lossy.transport_stats().total_latency_us > 0);
        assert!(lossy.transport_stats().retransmissions > 0);
        assert_eq!(instant.latency_metrics().locate.summary().max(), Some(0.0));
        assert!(lossy.latency_metrics().locate.summary().mean() > 0.0);
        lossy.verify_consistency();
    }

    #[test]
    fn partition_blocks_cross_island_operations_and_heals() {
        use clash_transport::{LinkPolicy, LinkTransport};
        let mut c = ClashCluster::with_transport(
            ClashConfig::small_test(),
            8,
            1,
            Box::new(LinkTransport::new(LinkPolicy::lan(), 5)),
        )
        .unwrap();
        for i in 0..100 {
            c.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        c.run_load_check().unwrap();
        let ids = c.server_ids();
        let (left, right) = ids.split_at(ids.len() / 2);
        c.partition_network(&[left.to_vec(), right.to_vec()]);

        // During the partition, some locates fail with NetworkUnreachable
        // (whenever the route crosses islands) — and nothing panics or
        // corrupts state, including load checks.
        let mut failed = 0;
        let mut ok = 0;
        for bits in 0..256u64 {
            match c.locate(key(bits)) {
                Ok(_) => ok += 1,
                Err(ClashError::NetworkUnreachable { .. }) => failed += 1,
                Err(e) => panic!("unexpected error under partition: {e}"),
            }
        }
        assert!(failed > 0, "an island split must sever some routes");
        assert!(ok > 0, "intra-island routes keep working");
        c.run_load_check().unwrap();
        c.verify_consistency();
        assert!(c.transport_stats().unreachable > 0);

        // After healing, every lookup agrees with the oracle again.
        c.heal_partition();
        c.run_load_check().unwrap();
        for bits in 0..256u64 {
            let p = c.locate(key(bits)).unwrap();
            let (oracle_server, oracle_group) = c.oracle_locate(key(bits)).unwrap();
            assert_eq!(p.server, oracle_server);
            assert_eq!(p.group, oracle_group);
        }
        c.verify_consistency();
        assert!(c.global_cover().is_partition());
    }

    #[test]
    fn committed_splits_under_partition_are_always_reported() {
        use clash_transport::{LinkPolicy, LinkTransport};
        // Fully sever a small fleet and overload its servers: self-mapped
        // retry splits commit locally even though every remote placement
        // is unreachable. Each committed split must surface in the
        // LoadCheckReport — a partition may defer work, never hide it.
        for seed in 0..8u64 {
            let mut c = ClashCluster::with_transport(
                ClashConfig::small_test(),
                2,
                seed,
                Box::new(LinkTransport::new(LinkPolicy::lan(), seed)),
            )
            .unwrap();
            for i in 0..100 {
                c.attach_source(i, key(i % 64), 2.0).unwrap();
            }
            let islands: Vec<Vec<ServerId>> =
                c.server_ids().into_iter().map(|id| vec![id]).collect();
            c.partition_network(&islands);
            let before = c.message_stats().splits;
            let report = c.run_load_check().unwrap();
            let committed = c.message_stats().splits - before;
            if committed > 0 {
                assert!(
                    !report.splits.is_empty(),
                    "seed {seed}: {committed} splits committed but none reported"
                );
            }
            c.verify_consistency();
            assert!(c.global_cover().is_partition());
        }
    }

    #[test]
    fn partition_defers_merges_until_heal() {
        use clash_transport::{LinkPolicy, LinkTransport};
        // Heat, partition, cool: merges whose RELEASE_KEYGROUP would
        // cross the partition are deferred, then complete after healing.
        let mut c = ClashCluster::with_transport(
            ClashConfig::small_test(),
            8,
            1,
            Box::new(LinkTransport::new(LinkPolicy::lan(), 9)),
        )
        .unwrap();
        for i in 0..100 {
            c.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        c.run_load_check().unwrap();
        let depth_hot = c.depth_stats().unwrap().2;
        assert!(depth_hot > 2);
        for i in 0..100 {
            c.detach_source(i).unwrap();
        }
        let ids = c.server_ids();
        let (left, right) = ids.split_at(ids.len() / 2);
        c.partition_network(&[left.to_vec(), right.to_vec()]);
        for _ in 0..12 {
            c.run_load_check().unwrap();
        }
        c.verify_consistency();
        c.heal_partition();
        for _ in 0..12 {
            c.run_load_check().unwrap();
        }
        c.verify_consistency();
        assert_eq!(
            c.depth_stats().unwrap().2,
            2,
            "after healing, consolidation must complete back to the roots"
        );
    }

    fn replicated_cluster(n: usize, r: usize, seed: u64) -> ClashCluster {
        ClashCluster::new(ClashConfig::small_test().with_replication(r), n, seed).unwrap()
    }

    #[test]
    fn replication_seeds_successor_copies_of_every_active_group() {
        let mut c = replicated_cluster(8, 2, 1);
        for i in 0..100 {
            c.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        c.run_load_check().unwrap();
        c.verify_consistency();
        // Every active group has copies on its owner's first live
        // successors, payloads current (checked by verify_consistency's
        // invariant 6); globally that means replicas exist.
        let held: usize = c
            .server_ids()
            .iter()
            .map(|&id| c.server(id).unwrap().replica_store().held_count())
            .sum();
        assert!(held > 0, "replication must place copies");
        assert!(c.message_stats().replication_messages > 0);
        // r = 0 charges nothing.
        let mut plain = replicated_cluster(8, 0, 1);
        for i in 0..100 {
            plain.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        plain.run_load_check().unwrap();
        assert_eq!(plain.message_stats().replication_messages, 0);
    }

    #[test]
    fn replication_factor_does_not_perturb_protocol_decisions() {
        let run = |r: usize| {
            let mut c = replicated_cluster(8, r, 1);
            for i in 0..100 {
                c.attach_source(i, key(i % 64), 2.0).unwrap();
            }
            c.run_load_check().unwrap();
            for i in 0..50 {
                c.detach_source(i).unwrap();
            }
            for _ in 0..6 {
                c.run_load_check().unwrap();
            }
            c
        };
        let plain = run(0);
        let replicated = run(3);
        let mut masked = replicated.message_stats();
        assert!(masked.replication_messages > 0);
        masked.replication_messages = 0;
        assert_eq!(
            masked,
            plain.message_stats(),
            "replication must only add replication messages"
        );
        assert_eq!(
            plain.global_cover().len(),
            replicated.global_cover().len(),
            "identical split/merge decisions"
        );
        replicated.verify_consistency();
    }

    #[test]
    fn replicated_crash_recovers_ledgers_without_oracle_reads() {
        let mut c = replicated_cluster(8, 2, 1);
        for i in 0..100 {
            c.attach_source(i, key(i % 64), 2.0).unwrap();
        }
        for q in 0..20 {
            c.attach_query(1000 + q, key((q * 11) % 256)).unwrap();
        }
        c.run_load_check().unwrap();
        let total_rate_before: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        // Crash the busiest server; everything must come back from the
        // replicas, with zero oracle reads.
        let victim = c
            .server_loads()
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)
            .unwrap();
        let report = c.fail_server(victim).unwrap();
        assert!(report.groups_recovered > 0);
        assert_eq!(report.groups_recovered, report.groups_reassigned);
        assert_eq!(report.groups_lost, 0);
        assert_eq!(report.groups_deferred, 0);
        assert_eq!((report.sources_lost, report.queries_lost), (0, 0));
        assert_eq!(
            c.recovery_oracle_reads(),
            0,
            "recovery must not read the oracle"
        );
        c.verify_consistency();
        assert_eq!(c.source_count(), 100);
        assert_eq!(c.query_count(), 20);
        let total_rate_after: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        assert!((total_rate_after - total_rate_before).abs() < 1e-6);
        for bits in (0..256u64).step_by(5) {
            let placement = c.locate(key(bits)).unwrap();
            assert_ne!(placement.server, victim);
            let (oracle_server, _) = c.oracle_locate(key(bits)).unwrap();
            assert_eq!(placement.server, oracle_server);
        }
        // Still zero: locate/oracle_locate outside recovery don't count.
        assert_eq!(c.recovery_oracle_reads(), 0);
        c.run_load_check().unwrap();
        c.verify_consistency();
    }

    #[test]
    fn sequential_replicated_crashes_keep_recovering() {
        // Promotion re-seeds immediately, so crash after crash (with no
        // load check in between) never outruns the replicas.
        let mut c = replicated_cluster(10, 2, 7);
        for i in 0..60 {
            c.attach_source(i, key(i * 4), 1.5).unwrap();
        }
        c.run_load_check().unwrap();
        for round in 0..5 {
            let ids = c.server_ids();
            let victim = ids[round % ids.len()];
            let report = c.fail_server(victim).unwrap();
            assert_eq!(report.groups_lost, 0, "round {round} lost groups");
            c.verify_consistency();
        }
        assert_eq!(c.recovery_oracle_reads(), 0);
        assert_eq!(c.source_count(), 60);
    }

    #[test]
    fn burst_killing_owner_and_all_replicas_reports_loss_truthfully() {
        let mut c = replicated_cluster(10, 1, 3);
        for i in 0..80 {
            c.attach_source(i, key(i % 256), 1.0).unwrap();
        }
        c.run_load_check().unwrap();
        // Pick an owner with at least one active group and kill it
        // together with its r successors — every replica dies with it.
        let owner = c
            .server_ids()
            .into_iter()
            .find(|&id| c.server(id).unwrap().table().active_count() > 0)
            .unwrap();
        let lost_groups = c.server(owner).unwrap().table().active_count();
        let mut victims = vec![owner];
        victims.extend(c.net().alive_successors(owner, 1));
        let sources_before = c.source_count();
        let report = c.fail_servers(&victims).unwrap();
        assert_eq!(report.servers_failed, victims.len());
        assert!(
            report.groups_lost >= lost_groups,
            "owner+replica burst must lose the owner's groups: {report:?}"
        );
        assert_eq!(c.recovery_oracle_reads(), 0);
        // The loss is truthful: stranded clients are gone, yet the cover
        // still partitions (empty re-rooted groups) and lookups work.
        assert!(c.source_count() < sources_before || report.sources_lost == 0);
        assert_eq!(
            sources_before - c.source_count(),
            report.sources_lost,
            "sources lost must match the report"
        );
        c.verify_consistency();
        assert!(c.global_cover().is_partition());
        for bits in (0..256u64).step_by(17) {
            let placement = c.locate(key(bits)).unwrap();
            let (oracle_server, _) = c.oracle_locate(key(bits)).unwrap();
            assert_eq!(placement.server, oracle_server);
        }
    }

    #[test]
    fn fail_servers_validates_input() {
        let mut c = replicated_cluster(4, 1, 2);
        let ids = c.server_ids();
        assert!(matches!(
            c.fail_servers(&[]),
            Err(ClashError::InvalidConfig { .. })
        ));
        assert!(matches!(
            c.fail_servers(&[ids[0], ids[0]]),
            Err(ClashError::InvalidConfig { .. })
        ));
        let ghost = ServerId::new(0xDEAD_BEEF, c.config().hash_space);
        assert!(matches!(
            c.fail_servers(&[ids[0], ghost]),
            Err(ClashError::UnknownServer { .. })
        ));
        // Nothing was mutated by the rejected calls.
        assert_eq!(c.server_count(), 4);
        c.verify_consistency();
        assert!(matches!(
            c.fail_servers(&ids),
            Err(ClashError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn depth_probe_counts_match_paper_bound() {
        // After heavy splitting, locates converge within ~log2(N) probes.
        let mut c = cluster(16);
        for i in 0..200 {
            c.attach_source(i, key(i % 256), 2.0).unwrap();
        }
        for _ in 0..3 {
            c.run_load_check().unwrap();
        }
        let mut max_probes = 0;
        for bits in (0..256u64).step_by(3) {
            let p = c.locate(key(bits)).unwrap();
            max_probes = max_probes.max(p.probes);
        }
        // log2(8+1) + 1 ≈ 4.2 → allow 5.
        assert!(max_probes <= 5, "max probes {max_probes}");
    }

    /// Runtime mirror of the clash-lint static rules, pinned: the sharded
    /// route phase (snapshot freeze → merge drain) must never draw from
    /// the cluster RNG — the in-phase assertion fails the flush if it
    /// does, and `route_draw_checks` proves the instrumented path really
    /// ran, on both sides of the inline/threaded routing threshold.
    #[cfg(debug_assertions)]
    #[test]
    fn route_phase_draws_zero_from_cluster_rng() {
        let config = ClashConfig::small_test().with_shards(4);
        let mut c = ClashCluster::new(config, 8, 1).unwrap();
        // Small batch: routes inline (below the worker threshold).
        for i in 0..8u64 {
            c.attach_source(i, key(i * 31), 1.0).unwrap();
        }
        c.flush_batch().unwrap();
        let after_inline = c.route_draw_checks();
        assert!(after_inline > 0, "inline route phase was never checked");
        // Large batch: crosses PAR_ROUTE_MIN, routes on worker threads.
        for i in 8..300u64 {
            c.attach_source(i, key(i % 256), 1.0).unwrap();
        }
        c.flush_batch().unwrap();
        assert!(
            c.route_draw_checks() > after_inline,
            "threaded route phase was never checked"
        );
        c.run_load_check().unwrap();
        c.verify_consistency();
    }
}
