//! Error types for the CLASH protocol layer.

use std::error::Error;
use std::fmt;

use clash_keyspace::error::KeyError;
use clash_keyspace::prefix::Prefix;

use crate::ServerId;

/// Errors surfaced by CLASH protocol operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClashError {
    /// An underlying key/prefix operation failed.
    Key(KeyError),
    /// A table operation referenced a group this server does not hold.
    UnknownGroup {
        /// The group that was not found.
        group: Prefix,
    },
    /// A table operation required an active (leaf) group but the entry is
    /// inactive, or vice versa.
    WrongActivity {
        /// The group in question.
        group: Prefix,
        /// Whether the operation expected the entry to be active.
        expected_active: bool,
    },
    /// A group at maximum depth cannot be split further.
    AtMaxDepth {
        /// The group that could not be split.
        group: Prefix,
    },
    /// A merge was attempted but the children are not both mergeable
    /// leaves.
    NotMergeable {
        /// The parent group of the attempted merge.
        parent: Prefix,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A message referenced a server that does not exist in the cluster.
    UnknownServer {
        /// The missing server.
        server: ServerId,
    },
    /// The cluster configuration is invalid.
    InvalidConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A client depth search failed to converge within the probe budget —
    /// indicates a protocol invariant violation.
    SearchDiverged {
        /// Probes used before giving up.
        probes: u32,
    },
    /// A protocol message could not be delivered because the network is
    /// partitioned between the two nodes. Unlike the other variants this
    /// is a *runtime* condition, not a bug: callers retry after the
    /// partition heals (the `netfault` experiment exercises exactly
    /// this).
    NetworkUnreachable {
        /// The sending node.
        from: ServerId,
        /// The unreachable destination.
        to: ServerId,
    },
}

impl fmt::Display for ClashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClashError::Key(e) => write!(f, "key error: {e}"),
            ClashError::UnknownGroup { group } => {
                write!(f, "server does not hold key group {group}")
            }
            ClashError::WrongActivity {
                group,
                expected_active,
            } => {
                if *expected_active {
                    write!(f, "key group {group} is not active")
                } else {
                    write!(f, "key group {group} is already active")
                }
            }
            ClashError::AtMaxDepth { group } => {
                write!(f, "key group {group} is at maximum depth and cannot split")
            }
            ClashError::NotMergeable { parent, reason } => {
                write!(f, "cannot merge children of {parent}: {reason}")
            }
            ClashError::UnknownServer { server } => {
                write!(f, "unknown server {server}")
            }
            ClashError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            ClashError::SearchDiverged { probes } => {
                write!(f, "depth search did not converge after {probes} probes")
            }
            ClashError::NetworkUnreachable { from, to } => {
                write!(f, "network partition: {from} cannot reach {to}")
            }
        }
    }
}

impl Error for ClashError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClashError::Key(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KeyError> for ClashError {
    fn from(e: KeyError) -> Self {
        ClashError::Key(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_keyspace::key::KeyWidth;

    #[test]
    fn displays_are_informative() {
        let g = Prefix::root(KeyWidth::new(8).unwrap());
        assert!(ClashError::UnknownGroup { group: g }
            .to_string()
            .contains('*'));
        assert!(ClashError::AtMaxDepth { group: g }
            .to_string()
            .contains("maximum depth"));
        assert!(ClashError::InvalidConfig { reason: "x" }
            .to_string()
            .contains('x'));
    }

    #[test]
    fn key_error_is_source() {
        let inner = KeyError::InvalidWidth { width: 0 };
        let err = ClashError::from(inner.clone());
        assert_eq!(err, ClashError::Key(inner));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ClashError>();
    }
}
