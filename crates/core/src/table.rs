//! The CLASH `ServerTable` (§5, Figure 2 of the paper).
//!
//! Each server keeps one entry per key group it manages or has split:
//!
//! | field | paper name | meaning |
//! |---|---|---|
//! | `group` | VirtualKeyGroup + depth | the key group |
//! | `parent` | ParentID | who holds the parent entry (`Root` = -1) |
//! | `right_child` | RightChildID | who received the right child on split |
//! | `active` | Active | leaf of the logical tree (currently managed) |
//!
//! Active entries are the leaves: they carry load and answer
//! `ACCEPT_OBJECT`. Inactive entries are interior nodes this server split;
//! their left child is always local (same virtual key ⇒ same hash ⇒ same
//! server), and they remember the last load report from the right child so
//! the server can decide when to consolidate.

use std::fmt;

use clash_keyspace::cover::PrefixMap;
use clash_keyspace::key::{Key, KeyWidth};
use clash_keyspace::prefix::Prefix;

use crate::error::ClashError;
use crate::load::GroupLoad;
use crate::messages::AcceptObjectResponse;
use crate::ServerId;

/// Who holds the parent entry of a key group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParentRef {
    /// This group is a bootstrap root (`ParentID = -1`); consolidation
    /// never collapses above it.
    Root,
    /// The parent entry lives on this server (possibly ourselves).
    Server(ServerId),
}

/// The last load report received about a remote right child.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChildReport {
    /// Reported load of the child group.
    pub load: GroupLoad,
    /// Whether the child entry was still a leaf when it reported.
    pub is_leaf: bool,
}

/// One row of the server table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableEntry {
    /// The key group (virtual key + depth).
    pub group: Prefix,
    /// Who holds the parent entry.
    pub parent: ParentRef,
    /// Server that accepted the right child when this entry was split
    /// (`None` while active).
    pub right_child: Option<ServerId>,
    /// True if this entry is a leaf of the logical tree.
    pub active: bool,
    /// Current load (meaningful for active entries).
    pub load: GroupLoad,
    /// Last report from the remote right child (inactive entries only).
    pub last_child_report: Option<ChildReport>,
}

impl TableEntry {
    fn new_active(group: Prefix, parent: ParentRef, load: GroupLoad) -> Self {
        TableEntry {
            group,
            parent,
            right_child: None,
            active: true,
            load,
            last_child_report: None,
        }
    }
}

/// A CLASH server's view of the key groups it manages.
///
/// # Example (reproducing Figure 2)
///
/// ```
/// use clash_core::table::ServerTable;
/// use clash_core::load::GroupLoad;
/// use clash_chord::id::ChordId;
/// use clash_keyspace::hash::HashSpace;
/// use clash_keyspace::key::{Key, KeyWidth};
/// use clash_keyspace::prefix::Prefix;
///
/// let space = HashSpace::new(16)?;
/// let s25 = ChordId::new(25, space);
/// let s22 = ChordId::new(22, space);
/// let width = KeyWidth::new(7)?;
/// let mut table = ServerTable::new(s25, width);
///
/// // s25 is the root for "011*" and accepted "01011*" from s22.
/// table.insert_root(Prefix::parse("011*", 7)?)?;
/// table.accept_group(Prefix::parse("01011*", 7)?, s22, GroupLoad::zero())?;
///
/// // The §5 case (c) example: key "0101010" at depth 6 → d_min = 4.
/// let resp = table.classify_object(Key::parse("0101010", 7)?, 6);
/// assert_eq!(
///     resp,
///     clash_core::messages::AcceptObjectResponse::IncorrectDepth { d_min: Some(4) }
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct ServerTable {
    owner: ServerId,
    map: PrefixMap<TableEntry>,
}

impl ServerTable {
    /// Creates an empty table owned by `owner` for keys of `width` bits.
    pub fn new(owner: ServerId, width: KeyWidth) -> Self {
        ServerTable {
            owner,
            map: PrefixMap::new(width),
        }
    }

    /// The owning server.
    pub fn owner(&self) -> ServerId {
        self.owner
    }

    /// The key width.
    pub fn width(&self) -> KeyWidth {
        self.map.width()
    }

    /// Number of entries (active + inactive).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of active (leaf) entries.
    pub fn active_count(&self) -> usize {
        self.map.iter().filter(|(_, e)| e.active).count()
    }

    /// True if the table holds at least one inactive (split) entry —
    /// the precondition for this server having any merge candidate at
    /// all. The cluster's load check uses this to skip underloaded
    /// servers that trivially cannot consolidate.
    pub fn has_split_entries(&self) -> bool {
        self.map.iter().any(|(_, e)| !e.active)
    }

    /// Iterates over all entries in binary-string order.
    pub fn entries(&self) -> impl Iterator<Item = &TableEntry> {
        self.map.iter().map(|(_, e)| e)
    }

    /// Iterates over the active groups.
    pub fn active_groups(&self) -> impl Iterator<Item = &TableEntry> {
        self.entries().filter(|e| e.active)
    }

    /// Returns the entry for `group`, if present.
    pub fn entry(&self, group: Prefix) -> Option<&TableEntry> {
        self.map.get(group)
    }

    /// Inserts a bootstrap root group (active, `ParentID = -1`).
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::WrongActivity`] if the group already exists.
    pub fn insert_root(&mut self, group: Prefix) -> Result<(), ClashError> {
        if self.map.contains(group) {
            return Err(ClashError::WrongActivity {
                group,
                expected_active: false,
            });
        }
        self.map.insert(
            group,
            TableEntry::new_active(group, ParentRef::Root, GroupLoad::zero()),
        );
        Ok(())
    }

    /// Accepts responsibility for a key group (the receiving side of
    /// `ACCEPT_KEYGROUP`). Per §5 the receiver must always accept.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::WrongActivity`] if an entry for the group
    /// already exists (a protocol invariant violation).
    pub fn accept_group(
        &mut self,
        group: Prefix,
        parent: ServerId,
        load: GroupLoad,
    ) -> Result<(), ClashError> {
        if self.map.contains(group) {
            return Err(ClashError::WrongActivity {
                group,
                expected_active: false,
            });
        }
        self.map.insert(
            group,
            TableEntry::new_active(group, ParentRef::Server(parent), load),
        );
        Ok(())
    }

    /// The active group containing `key`, if this server manages it.
    pub fn owning_group(&self, key: Key) -> Option<&TableEntry> {
        self.map
            .longest_prefix_match(key)
            .map(|(_, e)| e)
            .filter(|e| e.active)
    }

    /// Handles an `ACCEPT_OBJECT` probe: the three cases of §5.
    pub fn classify_object(&self, key: Key, estimated_depth: u32) -> AcceptObjectResponse {
        match self.owning_group(key) {
            Some(e) if e.group.depth() == estimated_depth => AcceptObjectResponse::Ok {
                depth: estimated_depth,
            },
            Some(e) => AcceptObjectResponse::OkCorrected {
                depth: e.group.depth(),
            },
            None => AcceptObjectResponse::IncorrectDepth {
                d_min: (!self.map.is_empty()).then(|| self.map.max_common_prefix_len(key)),
            },
        }
    }

    /// Splits an active group: the entry becomes inactive, the left child
    /// is created locally (active, parent = self), and the right child is
    /// returned for the caller to place via the DHT.
    ///
    /// The parent's load moves to the left child; the caller re-partitions
    /// loads via [`ServerTable::set_load`] once it knows the split.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::UnknownGroup`] if the group is not held,
    /// [`ClashError::WrongActivity`] if it is not active, or
    /// [`ClashError::AtMaxDepth`] at full depth.
    pub fn split(&mut self, group: Prefix) -> Result<(Prefix, Prefix), ClashError> {
        let entry = self
            .map
            .get(group)
            .ok_or(ClashError::UnknownGroup { group })?;
        if !entry.active {
            return Err(ClashError::WrongActivity {
                group,
                expected_active: true,
            });
        }
        if group.depth() >= group.width().get() {
            return Err(ClashError::AtMaxDepth { group });
        }
        let load = entry.load;
        let (left, right) = group.split().expect("depth checked above");
        {
            let entry = self.map.get_mut(group).expect("entry exists");
            entry.active = false;
            entry.load = GroupLoad::zero();
            entry.last_child_report = None;
        }
        self.map.insert(
            left,
            TableEntry::new_active(left, ParentRef::Server(self.owner), load),
        );
        Ok((left, right))
    }

    /// Records which server accepted the right child of a split `group`.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::UnknownGroup`] / [`ClashError::WrongActivity`]
    /// if `group` is not a split (inactive) entry.
    pub fn set_right_child(&mut self, group: Prefix, server: ServerId) -> Result<(), ClashError> {
        let entry = self
            .map
            .get_mut(group)
            .ok_or(ClashError::UnknownGroup { group })?;
        if entry.active {
            return Err(ClashError::WrongActivity {
                group,
                expected_active: false,
            });
        }
        entry.right_child = Some(server);
        Ok(())
    }

    /// Records a load report about the right child of `parent_group`.
    /// Reports for unknown or active entries are ignored (they can arrive
    /// after a merge, like any stale message).
    pub fn record_child_report(&mut self, parent_group: Prefix, report: ChildReport) {
        if let Some(entry) = self.map.get_mut(parent_group) {
            if !entry.active {
                entry.last_child_report = Some(report);
            }
        }
    }

    /// Forgets the last child report for `parent_group`. Called when the
    /// right child refuses a `RELEASE_KEYGROUP`, which proves the report
    /// stale: a live child re-reports next period, while a child orphaned
    /// by a peer failure (re-homed as a root) never reports again and must
    /// not be asked to release forever.
    pub fn clear_child_report(&mut self, parent_group: Prefix) {
        if let Some(entry) = self.map.get_mut(parent_group) {
            entry.last_child_report = None;
        }
    }

    /// Consolidates `parent_group`: removes the local left child and
    /// re-activates the parent with the combined load. The caller must
    /// have reclaimed the right child first (via `RELEASE_KEYGROUP`),
    /// passing back its load.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::NotMergeable`] unless the parent entry is
    /// inactive and its left child is a local active leaf; and, when the
    /// right child is also local, unless it too is an active leaf.
    pub fn merge(&mut self, parent_group: Prefix, right_load: GroupLoad) -> Result<(), ClashError> {
        let entry = self.map.get(parent_group).ok_or(ClashError::UnknownGroup {
            group: parent_group,
        })?;
        if entry.active {
            return Err(ClashError::NotMergeable {
                parent: parent_group,
                reason: "parent entry is already active",
            });
        }
        let right_holder = entry.right_child;
        let (left, right) = parent_group.split().expect("inactive entries were split");
        let left_entry = self.map.get(left).ok_or(ClashError::NotMergeable {
            parent: parent_group,
            reason: "left child entry is missing",
        })?;
        if !left_entry.active {
            return Err(ClashError::NotMergeable {
                parent: parent_group,
                reason: "left child is not a leaf",
            });
        }
        let left_load = left_entry.load;
        // A right child that mapped back to this very server is removed
        // locally as part of the merge.
        let combined_right = if right_holder == Some(self.owner) {
            let right_entry = self.map.get(right).ok_or(ClashError::NotMergeable {
                parent: parent_group,
                reason: "local right child entry is missing",
            })?;
            if !right_entry.active {
                return Err(ClashError::NotMergeable {
                    parent: parent_group,
                    reason: "local right child is not a leaf",
                });
            }
            let load = right_entry.load;
            self.map.remove(right);
            load
        } else {
            right_load
        };
        self.map.remove(left);
        let entry = self.map.get_mut(parent_group).expect("entry exists");
        entry.active = true;
        entry.right_child = None;
        entry.last_child_report = None;
        entry.load = left_load.combined(combined_right);
        Ok(())
    }

    /// Releases an active leaf group back to its parent (the receiving
    /// side of `RELEASE_KEYGROUP`). Returns its load, or `None` if the
    /// group is no longer an active leaf here (the paper's refusal case:
    /// the child split it since the last report).
    pub fn release_group(&mut self, group: Prefix) -> Option<GroupLoad> {
        match self.map.get(group) {
            Some(e) if e.active => {
                let load = e.load;
                self.map.remove(group);
                Some(load)
            }
            _ => None,
        }
    }

    /// Sets the load of an active group (data-plane accounting).
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::UnknownGroup`] / [`ClashError::WrongActivity`]
    /// if the group is not an active entry.
    pub fn set_load(&mut self, group: Prefix, load: GroupLoad) -> Result<(), ClashError> {
        let entry = self
            .map
            .get_mut(group)
            .ok_or(ClashError::UnknownGroup { group })?;
        if !entry.active {
            return Err(ClashError::WrongActivity {
                group,
                expected_active: true,
            });
        }
        entry.load = load;
        Ok(())
    }

    /// Adjusts the data rate of the active group containing `key`.
    /// Returns the group adjusted, or `None` if this server does not own
    /// the key.
    pub fn adjust_rate_for_key(&mut self, key: Key, delta: f64) -> Option<Prefix> {
        let group = self.owning_group(key)?.group;
        let entry = self.map.get_mut(group).expect("entry exists");
        entry.load.data_rate = (entry.load.data_rate + delta).max(0.0);
        Some(group)
    }

    /// Adjusts the query count of the active group containing `key`.
    pub fn adjust_queries_for_key(&mut self, key: Key, delta: i64) -> Option<Prefix> {
        let group = self.owning_group(key)?.group;
        let entry = self.map.get_mut(group).expect("entry exists");
        entry.load.queries = if delta >= 0 {
            entry.load.queries.saturating_add(delta as u64)
        } else {
            entry.load.queries.saturating_sub(delta.unsigned_abs())
        };
        Some(group)
    }

    /// Loads of all active groups (for the server-level load computation).
    pub fn active_loads(&self) -> impl Iterator<Item = GroupLoad> + '_ {
        self.active_groups().map(|e| e.load)
    }

    /// Removes and returns the full entry for `group` — the sending side
    /// of a live-membership handoff. Unlike [`ServerTable::release_group`]
    /// this works on interior (inactive) entries too and preserves every
    /// field, so the logical split tree survives the move. The caller must
    /// move the co-located left-child spine in the same batch (left
    /// children share their parent's virtual key, hence its hash, hence
    /// its `Map()` owner), or invariant 2 breaks.
    pub fn extract_entry(&mut self, group: Prefix) -> Option<TableEntry> {
        self.map.remove(group)
    }

    /// Installs an entry transferred from another server — the receiving
    /// side of a membership handoff (`ACCEPT_KEYGROUP` carrying full
    /// tree state). Parent / right-child pointers, activity and load are
    /// preserved verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::WrongActivity`] if an entry for the group is
    /// already present (a protocol invariant violation).
    pub fn install_entry(&mut self, entry: TableEntry) -> Result<(), ClashError> {
        if self.map.contains(entry.group) {
            return Err(ClashError::WrongActivity {
                group: entry.group,
                expected_active: false,
            });
        }
        self.map.insert(entry.group, entry);
        Ok(())
    }

    /// Re-points parent and right-child pointers after key groups migrated
    /// to new holders (server join/leave): `moved_to(g)` returns the new
    /// holder of `g` if that group's entry moved. Returns
    /// `(parents re-pointed, right children re-pointed)`.
    pub fn repoint_moved_entries(
        &mut self,
        moved_to: impl Fn(Prefix) -> Option<ServerId>,
    ) -> (usize, usize) {
        let groups: Vec<Prefix> = self.map.prefixes().collect();
        let mut parents = 0;
        let mut rights = 0;
        for group in groups {
            let entry = self.map.get_mut(group).expect("snapshotted entry");
            if let ParentRef::Server(cur) = entry.parent {
                if let Some(new_holder) = group.parent().and_then(&moved_to) {
                    if cur != new_holder {
                        entry.parent = ParentRef::Server(new_holder);
                        parents += 1;
                    }
                }
            }
            if let Some(cur) = entry.right_child {
                let (_, right) = group.split().expect("split entries have children");
                if let Some(new_holder) = moved_to(right) {
                    if cur != new_holder {
                        entry.right_child = Some(new_holder);
                        rights += 1;
                    }
                }
            }
        }
        (parents, rights)
    }

    /// Repairs this table after a peer server failed: entries whose
    /// parent pointer named the dead server become roots (their parent
    /// entry died with it), and split entries whose right child lived on
    /// the dead server are re-pointed via `resolve` (the current owner of
    /// that group after reassignment) or have their stale child report
    /// cleared. Returns `(orphaned parents, repaired right children)`.
    pub fn repair_after_peer_failure(
        &mut self,
        dead: ServerId,
        resolve: impl Fn(Prefix) -> Option<ServerId>,
    ) -> (usize, usize) {
        let groups: Vec<Prefix> = self.map.prefixes().collect();
        let mut orphaned = 0;
        let mut repaired = 0;
        for group in groups {
            let entry = self.map.get_mut(group).expect("snapshotted entry");
            if entry.parent == ParentRef::Server(dead) {
                entry.parent = ParentRef::Root;
                orphaned += 1;
            }
            if entry.right_child == Some(dead) {
                let (_, right) = group.split().expect("split entries have children");
                match resolve(right) {
                    Some(new_owner) => {
                        entry.right_child = Some(new_owner);
                        repaired += 1;
                    }
                    None => {
                        // The right child no longer exists as-is (it was
                        // itself split before the failure). Clear both the
                        // pointer and the stale report: this subtree can
                        // never merge above this entry again, and a dangling
                        // pointer would otherwise resurface as a merge
                        // target for a dead server once fresh reports flow.
                        entry.right_child = None;
                        entry.last_child_report = None;
                    }
                }
            }
        }
        (orphaned, repaired)
    }

    /// Checks the structural invariants of the table. Used liberally in
    /// tests; cheap enough for debug assertions.
    ///
    /// Invariants:
    /// 1. active entries are prefix-free;
    /// 2. every inactive entry has its left child present locally;
    /// 3. active entries have no `right_child`.
    pub fn check_invariants(&self) -> Result<(), ClashError> {
        let mut actives: PrefixMap<()> = PrefixMap::new(self.width());
        for (p, e) in self.map.iter() {
            if e.active {
                actives.insert(p, ());
                if e.right_child.is_some() {
                    return Err(ClashError::WrongActivity {
                        group: p,
                        expected_active: false,
                    });
                }
            } else {
                let (left, _right) = p.split().expect("inactive entries were split");
                if !self.map.contains(left) {
                    return Err(ClashError::UnknownGroup { group: left });
                }
            }
        }
        if !actives.is_prefix_free() {
            return Err(ClashError::InvalidConfig {
                reason: "active entries are not prefix-free",
            });
        }
        Ok(())
    }
}

impl fmt::Debug for ServerTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ServerTable(owner={}, {} entries)",
            self.owner,
            self.map.len()
        )?;
        for (i, (p, e)) in self.map.iter().enumerate() {
            let parent = match e.parent {
                ParentRef::Root => "-1".to_owned(),
                ParentRef::Server(s) if s == self.owner => "self".to_owned(),
                ParentRef::Server(s) => s.to_string(),
            };
            let right = e
                .right_child
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".to_owned());
            writeln!(
                f,
                "  {:>2}. {:<12} depth={:<2} parent={:<6} right={:<6} active={}",
                i + 1,
                p.to_string(),
                p.depth(),
                parent,
                right,
                if e.active { "Y" } else { "N" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_keyspace::hash::HashSpace;

    fn sid(v: u64) -> ServerId {
        ServerId::new(v, HashSpace::new(16).unwrap())
    }

    fn w7() -> KeyWidth {
        KeyWidth::new(7).unwrap()
    }

    fn p(s: &str) -> Prefix {
        Prefix::parse(s, 7).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::parse(s, 7).unwrap()
    }

    fn rate(r: f64) -> GroupLoad {
        GroupLoad {
            data_rate: r,
            queries: 0,
        }
    }

    /// Builds the exact table of Figure 2 (server s25).
    fn figure2_table() -> ServerTable {
        let s25 = sid(25);
        let mut t = ServerTable::new(s25, w7());
        // Entry 1: 011* root, split → right child 45.
        t.insert_root(p("011*")).unwrap();
        // Entry 2: 01011* accepted from s22, split → right child 26.
        t.accept_group(p("01011*"), sid(22), GroupLoad::zero())
            .unwrap();
        // Split 011* → 0110* local (entry 4) + 0111* shipped to s45.
        let (l1, _r1) = t.split(p("011*")).unwrap();
        assert_eq!(l1, p("0110*"));
        t.set_right_child(p("011*"), sid(45)).unwrap();
        // Split 01011* → 010110* local (entry 3) + 010111* to s26.
        let (l2, _r2) = t.split(p("01011*")).unwrap();
        assert_eq!(l2, p("010110*"));
        t.set_right_child(p("01011*"), sid(26)).unwrap();
        // Split 0110* → 01100* local (entry 5) + 01101* to s11.
        let (l3, _r3) = t.split(p("0110*")).unwrap();
        assert_eq!(l3, p("01100*"));
        t.set_right_child(p("0110*"), sid(11)).unwrap();
        t
    }

    #[test]
    fn figure2_shape_matches_paper() {
        let t = figure2_table();
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.active_count(), 2);
        // Active leaves: 010110* and 01100* (rows 3 and 5, Active=Y).
        let actives: Vec<String> = t.active_groups().map(|e| e.group.to_string()).collect();
        assert_eq!(actives, vec!["010110*", "01100*"]);
        // Parent/right-child fields as in the figure.
        let row1 = t.entry(p("011*")).unwrap();
        assert_eq!(row1.parent, ParentRef::Root);
        assert_eq!(row1.right_child, Some(sid(45)));
        let row2 = t.entry(p("01011*")).unwrap();
        assert_eq!(row2.parent, ParentRef::Server(sid(22)));
        assert_eq!(row2.right_child, Some(sid(26)));
        let row4 = t.entry(p("0110*")).unwrap();
        assert_eq!(row4.parent, ParentRef::Server(sid(25)));
        assert_eq!(row4.right_child, Some(sid(11)));
    }

    #[test]
    fn classify_case_a_right_depth() {
        // §5 (a): key "0110001" with d=5 → OK.
        let t = figure2_table();
        assert_eq!(
            t.classify_object(k("0110001"), 5),
            AcceptObjectResponse::Ok { depth: 5 }
        );
    }

    #[test]
    fn classify_case_b_wrong_depth_right_server() {
        // §5 (b): key "0110001" with d=7 → OK corrected to 5.
        let t = figure2_table();
        assert_eq!(
            t.classify_object(k("0110001"), 7),
            AcceptObjectResponse::OkCorrected { depth: 5 }
        );
    }

    #[test]
    fn classify_case_c_wrong_server() {
        // §5 (c): key "0101010" with d=6 → INCORRECT_DEPTH(4).
        let t = figure2_table();
        assert_eq!(
            t.classify_object(k("0101010"), 6),
            AcceptObjectResponse::IncorrectDepth { d_min: Some(4) }
        );
    }

    #[test]
    fn split_moves_load_to_left_child() {
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("01*")).unwrap();
        t.set_load(p("01*"), rate(10.0)).unwrap();
        let (l, r) = t.split(p("01*")).unwrap();
        assert_eq!((l, r), (p("010*"), p("011*")));
        assert_eq!(t.entry(l).unwrap().load, rate(10.0));
        assert!(!t.entry(p("01*")).unwrap().active);
        assert!(t.entry(r).is_none(), "right child is not local");
        t.check_invariants().unwrap();
    }

    #[test]
    fn split_requires_active_entry() {
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("01*")).unwrap();
        t.split(p("01*")).unwrap();
        assert!(matches!(
            t.split(p("01*")),
            Err(ClashError::WrongActivity { .. })
        ));
        assert!(matches!(
            t.split(p("10*")),
            Err(ClashError::UnknownGroup { .. })
        ));
    }

    #[test]
    fn split_at_max_depth_fails() {
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("0101010")).unwrap();
        assert!(matches!(
            t.split(p("0101010")),
            Err(ClashError::AtMaxDepth { .. })
        ));
    }

    #[test]
    fn merge_restores_parent_with_combined_load() {
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("01*")).unwrap();
        t.set_load(p("01*"), rate(10.0)).unwrap();
        let (l, _r) = t.split(p("01*")).unwrap();
        t.set_right_child(p("01*"), sid(9)).unwrap();
        t.set_load(l, rate(6.0)).unwrap();
        // Right child released remotely with rate 4.
        t.merge(p("01*"), rate(4.0)).unwrap();
        let e = t.entry(p("01*")).unwrap();
        assert!(e.active);
        assert_eq!(e.load, rate(10.0));
        assert_eq!(e.right_child, None);
        assert!(t.entry(l).is_none());
        t.check_invariants().unwrap();
    }

    #[test]
    fn merge_with_local_right_child() {
        // Self-mapped right child: both children live here.
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("01*")).unwrap();
        let (l, r) = t.split(p("01*")).unwrap();
        t.set_right_child(p("01*"), sid(1)).unwrap(); // maps back to self
        t.accept_group(r, sid(1), rate(3.0)).unwrap();
        t.set_load(l, rate(5.0)).unwrap();
        t.check_invariants().unwrap();
        t.merge(p("01*"), GroupLoad::zero()).unwrap();
        let e = t.entry(p("01*")).unwrap();
        assert!(e.active);
        assert_eq!(e.load, rate(8.0));
        assert!(t.entry(r).is_none());
    }

    #[test]
    fn merge_refuses_when_left_child_split_further() {
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("01*")).unwrap();
        let (l, _r) = t.split(p("01*")).unwrap();
        t.set_right_child(p("01*"), sid(9)).unwrap();
        t.split(l).unwrap();
        t.set_right_child(l, sid(10)).unwrap();
        assert!(matches!(
            t.merge(p("01*"), GroupLoad::zero()),
            Err(ClashError::NotMergeable { .. })
        ));
    }

    #[test]
    fn release_group_returns_load_or_refuses() {
        let mut t = ServerTable::new(sid(2), w7());
        t.accept_group(p("0111*"), sid(1), rate(7.0)).unwrap();
        assert_eq!(t.release_group(p("0111*")), Some(rate(7.0)));
        assert!(t.is_empty());
        // Releasing something we no longer hold → refusal (None).
        assert_eq!(t.release_group(p("0111*")), None);
        // A split (inactive) entry refuses release too.
        t.accept_group(p("0110*"), sid(1), rate(1.0)).unwrap();
        t.split(p("0110*")).unwrap();
        assert_eq!(t.release_group(p("0110*")), None);
    }

    #[test]
    fn child_reports_recorded_on_inactive_entries_only() {
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("01*")).unwrap();
        let report = ChildReport {
            load: rate(2.0),
            is_leaf: true,
        };
        // Active entry: ignored.
        t.record_child_report(p("01*"), report);
        assert_eq!(t.entry(p("01*")).unwrap().last_child_report, None);
        // After a split: recorded.
        t.split(p("01*")).unwrap();
        t.set_right_child(p("01*"), sid(9)).unwrap();
        t.record_child_report(p("01*"), report);
        assert_eq!(t.entry(p("01*")).unwrap().last_child_report, Some(report));
        // Unknown group: silently ignored (stale message).
        t.record_child_report(p("11*"), report);
    }

    #[test]
    fn clear_child_report_forgets_stale_state() {
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("01*")).unwrap();
        t.split(p("01*")).unwrap();
        t.set_right_child(p("01*"), sid(9)).unwrap();
        let report = ChildReport {
            load: rate(2.0),
            is_leaf: true,
        };
        t.record_child_report(p("01*"), report);
        assert_eq!(t.entry(p("01*")).unwrap().last_child_report, Some(report));
        t.clear_child_report(p("01*"));
        assert_eq!(t.entry(p("01*")).unwrap().last_child_report, None);
        // Unknown groups are ignored (stale RELEASE exchanges can race
        // with merges, like any other stale message).
        t.clear_child_report(p("11*"));
    }

    #[test]
    fn adjust_rate_for_key_targets_owning_group() {
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("01*")).unwrap();
        assert_eq!(t.adjust_rate_for_key(k("0101010"), 2.5), Some(p("01*")));
        assert_eq!(t.entry(p("01*")).unwrap().load.data_rate, 2.5);
        // Keys we do not own return None.
        assert_eq!(t.adjust_rate_for_key(k("1101010"), 1.0), None);
        // Rates clamp at zero.
        t.adjust_rate_for_key(k("0101010"), -100.0);
        assert_eq!(t.entry(p("01*")).unwrap().load.data_rate, 0.0);
    }

    #[test]
    fn adjust_queries_for_key() {
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("01*")).unwrap();
        t.adjust_queries_for_key(k("0101010"), 3);
        assert_eq!(t.entry(p("01*")).unwrap().load.queries, 3);
        t.adjust_queries_for_key(k("0101010"), -1);
        assert_eq!(t.entry(p("01*")).unwrap().load.queries, 2);
        t.adjust_queries_for_key(k("0101010"), -10);
        assert_eq!(t.entry(p("01*")).unwrap().load.queries, 0);
    }

    #[test]
    fn duplicate_root_or_accept_rejected() {
        let mut t = ServerTable::new(sid(1), w7());
        t.insert_root(p("01*")).unwrap();
        assert!(t.insert_root(p("01*")).is_err());
        assert!(t.accept_group(p("01*"), sid(2), GroupLoad::zero()).is_err());
    }

    #[test]
    fn extract_install_roundtrip_preserves_tree_state() {
        let mut src = figure2_table();
        let mut dst = ServerTable::new(sid(99), w7());
        // Move the whole 011* left spine (shared virtual key) wholesale.
        for g in ["011*", "0110*", "01100*"] {
            let entry = src.extract_entry(p(g)).unwrap();
            dst.install_entry(entry).unwrap();
        }
        src.check_invariants().unwrap();
        dst.check_invariants().unwrap();
        // Pointers survived the move verbatim.
        let row = dst.entry(p("011*")).unwrap();
        assert_eq!(row.parent, ParentRef::Root);
        assert_eq!(row.right_child, Some(sid(45)));
        assert!(!row.active);
        assert!(dst.entry(p("01100*")).unwrap().active);
        // Duplicates are protocol violations.
        let dup = dst.entry(p("011*")).unwrap().clone();
        assert!(dst.install_entry(dup).is_err());
        assert_eq!(src.extract_entry(p("011*")), None);
    }

    #[test]
    fn repoint_moved_entries_updates_both_pointer_kinds() {
        let mut t = figure2_table();
        // Pretend 0111* (right child of 011*, held by s45) and 01011*'s
        // parent entry (held by s22) both migrated to s77.
        let new_holder = sid(77);
        let (parents, rights) =
            t.repoint_moved_entries(|g| (g == p("0111*") || g == p("0101*")).then_some(new_holder));
        assert_eq!(rights, 1);
        assert_eq!(t.entry(p("011*")).unwrap().right_child, Some(new_holder));
        // 01011*'s parent prefix is 0101*; its pointer moves to s77.
        assert_eq!(parents, 1);
        assert_eq!(
            t.entry(p("01011*")).unwrap().parent,
            ParentRef::Server(new_holder)
        );
        // Re-pointing to the current holder is a no-op.
        let (parents, rights) =
            t.repoint_moved_entries(|g| (g == p("0111*")).then_some(new_holder));
        assert_eq!((parents, rights), (0, 0));
    }

    #[test]
    fn debug_output_resembles_figure2() {
        let t = figure2_table();
        let out = format!("{t:?}");
        assert!(out.contains("011*"));
        assert!(out.contains("parent=-1"));
        assert!(out.contains("parent=self"));
        assert!(out.contains("active=Y"));
        assert!(out.contains("active=N"));
    }
}
