//! A slot arena for the cluster's servers.
//!
//! The cluster used to keep its servers in a `BTreeMap<u64, ClashServer>`
//! — every per-server access chased tree nodes holding the full (large)
//! server value, and every load check snapshotted the key set into a
//! fresh `Vec`. The arena stores the servers in a dense `Vec` of slots
//! (freed slots are recycled) with a small `u64 → slot` index kept in a
//! `BTreeMap`, so:
//!
//! * per-id access touches only the compact index tree plus one slot;
//! * iteration stays **deterministic in ring-id order** (the index tree's
//!   order), which the same-seed bit-for-bit reproducibility of the whole
//!   simulator depends on;
//! * slots of departed servers are reused, keeping the vector dense under
//!   churn.

use std::collections::BTreeMap;

use clash_simkernel::merge::arc_of;

use crate::server::ClashServer;

/// Dense storage for the cluster's servers, indexed by ring id, iterated
/// in ring-id order (see the module docs).
#[derive(Debug)]
pub struct ServerArena {
    slots: Vec<Option<ClashServer>>,
    free: Vec<usize>,
    index: BTreeMap<u64, usize>,
}

impl ServerArena {
    /// An empty arena.
    pub fn new() -> Self {
        ServerArena {
            slots: Vec::new(),
            free: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Number of live servers.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no servers are stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True if `sid` names a live server.
    pub fn contains(&self, sid: u64) -> bool {
        self.index.contains_key(&sid)
    }

    /// The server with ring id `sid`.
    pub fn get(&self, sid: u64) -> Option<&ClashServer> {
        self.index
            .get(&sid)
            .map(|&slot| self.slots[slot].as_ref().expect("indexed slot is live"))
    }

    /// Mutable access to the server with ring id `sid`.
    pub fn get_mut(&mut self, sid: u64) -> Option<&mut ClashServer> {
        let slot = *self.index.get(&sid)?;
        Some(self.slots[slot].as_mut().expect("indexed slot is live"))
    }

    /// Inserts a server under its own ring id. Returns false (leaving the
    /// arena unchanged) if the id is already present.
    pub fn insert(&mut self, server: ClashServer) -> bool {
        let sid = server.id().value();
        if self.index.contains_key(&sid) {
            return false;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(server);
                slot
            }
            None => {
                self.slots.push(Some(server));
                self.slots.len() - 1
            }
        };
        self.index.insert(sid, slot);
        true
    }

    /// Removes and returns the server with ring id `sid`, recycling its
    /// slot.
    pub fn remove(&mut self, sid: u64) -> Option<ClashServer> {
        let slot = self.index.remove(&sid)?;
        self.free.push(slot);
        self.slots[slot].take()
    }

    /// Live ring ids, in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.index.keys().copied()
    }

    /// Live servers, in ascending ring-id order.
    pub fn iter(&self) -> impl Iterator<Item = &ClashServer> + '_ {
        self.index
            .values()
            .map(|&slot| self.slots[slot].as_ref().expect("indexed slot is live"))
    }

    /// Per-arc slices of the live ids: element `a` holds, in ascending
    /// order, exactly the ids the canonical arc function maps to arc `a`
    /// of a `bits`-wide ring split into `shards` arcs. This is the handoff
    /// shape of the sharded phases — worker `a` receives slice `a` as its
    /// whole input — and concatenating the slices in arc order reproduces
    /// [`ServerArena::ids`] exactly (the arc function is monotone).
    pub fn arc_ids(&self, shards: usize, bits: u32) -> Vec<Vec<u64>> {
        let shards = shards.max(1);
        let mut arcs: Vec<Vec<u64>> = (0..shards).map(|_| Vec::new()).collect();
        for &sid in self.index.keys() {
            arcs[arc_of(sid, shards, bits)].push(sid);
        }
        arcs
    }
}

impl Default for ServerArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClashConfig;
    use crate::ServerId;

    fn server(v: u64) -> ClashServer {
        let cfg = ClashConfig::small_test();
        ClashServer::new(ServerId::new(v, cfg.hash_space), cfg)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = ServerArena::new();
        assert!(a.is_empty());
        assert!(a.insert(server(5)));
        assert!(a.insert(server(3)));
        assert!(!a.insert(server(5)), "duplicate ids are rejected");
        assert_eq!(a.len(), 2);
        assert!(a.contains(3));
        assert_eq!(a.get(5).unwrap().id().value(), 5);
        assert!(a.get(99).is_none());
        assert!(a.get_mut(3).is_some());
        let removed = a.remove(5).unwrap();
        assert_eq!(removed.id().value(), 5);
        assert!(a.remove(5).is_none());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn iteration_is_in_id_order_and_slots_recycle() {
        let mut a = ServerArena::new();
        for v in [9u64, 1, 7, 4] {
            a.insert(server(v));
        }
        let order: Vec<u64> = a.ids().collect();
        assert_eq!(order, vec![1, 4, 7, 9]);
        let slots_before = {
            a.remove(7);
            a.insert(server(2));
            // The freed slot was reused: no growth.
            a.iter().count()
        };
        assert_eq!(slots_before, 4);
        let order: Vec<u64> = a.iter().map(|s| s.id().value()).collect();
        assert_eq!(order, vec![1, 2, 4, 9]);
    }

    #[test]
    fn arc_ids_partition_concatenates_to_global_order() {
        let cfg = ClashConfig::small_test();
        let bits = cfg.hash_space.bits();
        let mut a = ServerArena::new();
        for v in [0u64, 3, 40, 77, 128, 200, 255] {
            a.insert(server(v));
        }
        let reference: Vec<u64> = a.ids().collect();
        for shards in [1usize, 2, 3, 8] {
            let arcs = a.arc_ids(shards, bits);
            assert_eq!(arcs.len(), shards);
            let concat: Vec<u64> = arcs.iter().flatten().copied().collect();
            assert_eq!(concat, reference, "shards={shards}");
            for (arc, ids) in arcs.iter().enumerate() {
                for &sid in ids {
                    assert_eq!(arc_of(sid, shards, bits), arc);
                }
            }
        }
    }
}
