//! CLASH protocol messages (§5 of the paper).
//!
//! Servers exchange four kinds of messages on top of the DHT:
//!
//! * `ACCEPT_OBJECT` — a client (or its proxy server) probes for the
//!   correct depth of a key and, once correct, stores/queries the object;
//! * `ACCEPT_KEYGROUP` — an overloaded server transfers responsibility for
//!   a right-child key group ("CLASH requires the child node to accept all
//!   ACCEPT_KEYGROUP messages");
//! * `RELEASE_KEYGROUP` — a parent reclaims a cold right child during
//!   bottom-up consolidation (refusable: the child may have split since
//!   the last report);
//! * `LOAD_REPORT` — leaf groups periodically report load to the server
//!   holding their parent entry.

use clash_keyspace::key::Key;
use clash_keyspace::prefix::Prefix;

use crate::load::GroupLoad;
use crate::ServerId;

/// A request message addressed to a CLASH server.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClashRequest {
    /// Probe/insert an object with an estimated depth.
    AcceptObject {
        /// The object's identifier key.
        key: Key,
        /// The client's estimated depth.
        depth: u32,
    },
    /// Transfer responsibility for a key group to the receiver.
    AcceptKeygroup {
        /// The key group being transferred.
        group: Prefix,
        /// The server that keeps the parent entry (for load reports).
        parent: ServerId,
        /// Load state transferred with the group.
        load: GroupLoad,
    },
    /// Reclaim a cold right-child key group from the receiver.
    ReleaseKeygroup {
        /// The key group being reclaimed.
        group: Prefix,
    },
    /// Periodic leaf-to-parent load report.
    LoadReport {
        /// The reporting (child) group.
        group: Prefix,
        /// Its current load.
        load: GroupLoad,
        /// True if the reporting entry is still a leaf (mergeable).
        is_leaf: bool,
    },
}

/// Server responses to `ACCEPT_OBJECT` (§5 cases a–c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptObjectResponse {
    /// Case (a): the estimated depth was correct.
    Ok {
        /// The (confirmed) depth.
        depth: u32,
    },
    /// Case (b): wrong depth, but this server owns the object anyway; the
    /// correct depth is returned.
    OkCorrected {
        /// The corrected depth.
        depth: u32,
    },
    /// Case (c): wrong depth and wrong server; `d_min` is the longest
    /// prefix match between the key and this server's entries.
    ///
    /// `d_min = None` means the responder holds *no entries at all* — a
    /// corner case the paper leaves implicit (with 1000 servers and 64
    /// initial groups most servers are empty). An empty responder still
    /// carries information: had the guessed depth been ≤ the true depth,
    /// the CLASH placement invariant (`Map(f(virtual key))` owns every
    /// group) guarantees the contacted server would hold the group of the
    /// zero-padded probe key — so an empty table proves the guess was too
    /// deep.
    IncorrectDepth {
        /// The longest prefix match length, or `None` if the responder
        /// has no entries.
        d_min: Option<u32>,
    },
}

impl AcceptObjectResponse {
    /// The confirmed depth if the probe succeeded (cases a and b).
    pub fn accepted_depth(self) -> Option<u32> {
        match self {
            AcceptObjectResponse::Ok { depth } | AcceptObjectResponse::OkCorrected { depth } => {
                Some(depth)
            }
            AcceptObjectResponse::IncorrectDepth { .. } => None,
        }
    }
}

/// Server response to `RELEASE_KEYGROUP`.
#[derive(Debug, Clone, PartialEq)]
pub enum ReleaseResponse {
    /// The group is returned together with its load state.
    Released {
        /// Load state handed back to the parent.
        load: GroupLoad,
    },
    /// The child has split the group since the parent's last report;
    /// consolidation is aborted.
    Refused,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepted_depth_extraction() {
        assert_eq!(
            AcceptObjectResponse::Ok { depth: 5 }.accepted_depth(),
            Some(5)
        );
        assert_eq!(
            AcceptObjectResponse::OkCorrected { depth: 3 }.accepted_depth(),
            Some(3)
        );
        assert_eq!(
            AcceptObjectResponse::IncorrectDepth { d_min: Some(4) }.accepted_depth(),
            None
        );
        assert_eq!(
            AcceptObjectResponse::IncorrectDepth { d_min: None }.accepted_depth(),
            None
        );
    }
}
