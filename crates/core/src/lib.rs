//! CLASH: Content and Load-Aware Scalable Hashing.
//!
//! This crate implements the protocol of Misra, Castro & Lee, *"CLASH: A
//! Protocol for Internet-Scale Utility-Oriented Distributed Computing"*
//! (ICDCS 2004): a redirection layer over a DHT that dynamically varies the
//! *depth* of identifier keys so that
//!
//! * semantically related objects (keys with common prefixes) cluster on as
//!   few servers as possible, and
//! * "hot" key groups split — one binary level at a time — onto additional
//!   servers only when a server actually overloads.
//!
//! # Architecture
//!
//! | paper concept (§) | module |
//! |---|---|
//! | key groups, `Shape()` (§3–4) | [`clash_keyspace`] (re-exported) |
//! | binary splitting (§4) | [`table`], [`server`], [`cluster`] |
//! | `ServerTable` (§5, Fig. 2) | [`table::ServerTable`] |
//! | server protocol messages (§5) | [`messages`] |
//! | client depth search (§5) | [`client::DepthSearch`] |
//! | load model & thresholds (§6) | [`load`], [`config`] |
//! | base-DHT baseline `DHT(x)` (§6.1) | [`config::ClashConfig::dht_baseline`] |
//!
//! The crate is deliberately I/O-free: [`server::ClashServer`] is a pure
//! state machine and [`cluster::ClashCluster`] is an in-process harness
//! that moves the protocol messages between servers over a simulated Chord
//! ring ([`clash_chord`]), counting every message. The full-scale
//! experiment driver lives in the `clash-sim` crate.
//!
//! # Quick start
//!
//! ```
//! use clash_core::cluster::ClashCluster;
//! use clash_core::config::ClashConfig;
//! use clash_keyspace::key::Key;
//!
//! // A small utility: 16 servers, 8-bit keys, splitting enabled.
//! let config = ClashConfig::small_test();
//! let mut cluster = ClashCluster::new(config, 16, 42)?;
//!
//! // Attach a streaming source: CLASH locates the key's current group.
//! let key = Key::parse("10110100", 8)?;
//! let placement = cluster.attach_source(1, key, 1.0)?;
//! assert!(placement.depth >= 1);
//!
//! // The cluster-wide active groups always partition the key space.
//! assert!(cluster.global_cover().is_partition());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// The grep audit at PR 7 found zero `unsafe` in the protocol crates;
// lock that in — determinism reasoning assumes no aliasing backdoors.
#![forbid(unsafe_code)]
pub mod arena;
pub mod client;
pub mod cluster;
pub mod config;
pub mod error;
pub mod latency;
pub mod load;
pub mod messages;
pub mod replication;
pub mod server;
pub mod shardset;
pub mod table;

pub use client::{DepthSearch, SearchOutcome};
pub use cluster::ClashCluster;
pub use config::ClashConfig;
pub use error::ClashError;
pub use latency::LatencyMetrics;
pub use load::{LoadLevel, QueryStreamLoadModel};
pub use messages::{AcceptObjectResponse, ClashRequest};
pub use replication::{ReplicaRecord, ReplicaStore};
pub use server::ClashServer;
pub use table::{ServerTable, TableEntry};

/// A CLASH server is identified by its DHT ring identifier.
pub type ServerId = clash_chord::id::ChordId;
