//! Arc-sharded candidate sets for the cluster's dirty-tracked state.
//!
//! The load check's candidate indices (dirty, overloaded, mergeable,
//! reporter servers) used to be single `BTreeSet<u64>`s. Sharding the
//! cluster state by ring arc gives each arc its own set slice, so that
//! per-arc phases (candidate classification, speculative split routing,
//! replica work-list collection) can hand each worker thread exactly its
//! arc's ids with no cross-arc aliasing — while *iteration order stays
//! globally ascending*: the arc function
//! [`clash_simkernel::merge::arc_of`] is monotone in the id, so
//! concatenating the per-arc ordered sets in arc order is the global
//! ring order. Every ordered walk over an [`ArcShardedSet`] is therefore
//! bit-for-bit the walk the unsharded `BTreeSet` produced, whatever the
//! shard count — the property the equivalence harness pins.

use std::collections::BTreeSet;

use clash_simkernel::merge::arc_of;

/// A set of ring ids partitioned into per-arc `BTreeSet` slices.
///
/// Semantically identical to one `BTreeSet<u64>`; the partition only
/// changes *where* each id is stored (its owning arc), never the
/// membership or the ascending iteration order.
#[derive(Debug, Clone)]
pub struct ArcShardedSet {
    arcs: Vec<BTreeSet<u64>>,
    bits: u32,
    len: usize,
}

impl ArcShardedSet {
    /// An empty set over `shards` arcs of a `bits`-wide hash space.
    /// `shards` is clamped to at least 1 (the sequential layout).
    pub fn new(shards: usize, bits: u32) -> Self {
        ArcShardedSet {
            arcs: (0..shards.max(1)).map(|_| BTreeSet::new()).collect(),
            bits,
            len: 0,
        }
    }

    /// The owning arc of `id`.
    pub fn arc_of(&self, id: u64) -> usize {
        arc_of(id, self.arcs.len(), self.bits)
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The ids owned by one arc, in ascending order.
    pub fn arc(&self, arc: usize) -> &BTreeSet<u64> {
        &self.arcs[arc]
    }

    /// Total ids across all arcs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no ids are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `id`; returns true if it was new.
    pub fn insert(&mut self, id: u64) -> bool {
        let arc = self.arc_of(id);
        let added = self.arcs[arc].insert(id);
        self.len += usize::from(added);
        added
    }

    /// Removes `id`; returns true if it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let arc = self.arc_of(id);
        let removed = self.arcs[arc].remove(&id);
        self.len -= usize::from(removed);
        removed
    }

    /// True if `id` is present.
    pub fn contains(&self, id: u64) -> bool {
        self.arcs[self.arc_of(id)].contains(&id)
    }

    /// All ids in ascending order (arc concatenation — see module docs).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.arcs.iter().flat_map(|a| a.iter().copied())
    }

    /// The smallest id `>= from`, or `None`. This is the sharded
    /// equivalent of `BTreeSet::range(from..).next()` — the cursor step
    /// of the split/merge phases — and costs one range probe on the
    /// cursor's own arc plus a first-element probe per later arc.
    pub fn first_at_or_after(&self, from: u64) -> Option<u64> {
        // The cursor may step past the top of the hash space (`last id
        // + 1`); every stored id is below it, so nothing can match.
        if self.bits < 64 && from >= (1u64 << self.bits) {
            return None;
        }
        let start_arc = self.arc_of(from);
        if let Some(&id) = self.arcs[start_arc].range(from..).next() {
            return Some(id);
        }
        self.arcs[start_arc + 1..]
            .iter()
            .find_map(|a| a.first().copied())
    }

    /// Drains every arc into one ascending vector.
    pub fn take_all(&mut self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        for arc in &mut self.arcs {
            out.extend(std::mem::take(arc));
        }
        self.len = 0;
        out
    }

    /// Drains the set into its per-arc slices — the handoff shape the
    /// parallel phases give their worker threads (arc `i` of the result
    /// is worker `i`'s whole input).
    pub fn take_arcs(&mut self) -> Vec<BTreeSet<u64>> {
        self.len = 0;
        self.arcs.iter_mut().map(std::mem::take).collect()
    }

    /// Inserts every id of `iter`.
    pub fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(shards: usize) -> ArcShardedSet {
        let mut s = ArcShardedSet::new(shards, 16);
        for id in [0u64, 3, 0x1000, 0x7FFF, 0x8000, 0xBEEF, 0xFFFF] {
            s.insert(id);
        }
        s
    }

    #[test]
    fn iteration_is_globally_ascending_for_every_shard_count() {
        let reference: Vec<u64> = filled(1).iter().collect();
        assert!(reference.windows(2).all(|w| w[0] < w[1]));
        for shards in [2usize, 3, 4, 8, 16] {
            let s = filled(shards);
            assert_eq!(s.iter().collect::<Vec<_>>(), reference, "shards={shards}");
            assert_eq!(s.len(), reference.len());
        }
    }

    #[test]
    fn cursor_step_matches_btreeset_range() {
        let reference: BTreeSet<u64> = filled(1).iter().collect();
        let s = filled(8);
        for from in [0u64, 1, 3, 4, 0x7FFF, 0x8000, 0x8001, 0xFFFF] {
            assert_eq!(
                s.first_at_or_after(from),
                reference.range(from..).next().copied(),
                "from={from:#x}"
            );
        }
        assert_eq!(s.first_at_or_after(u64::MAX), None);
    }

    #[test]
    fn insert_remove_and_drain_maintain_len() {
        let mut s = ArcShardedSet::new(4, 16);
        assert!(s.insert(7));
        assert!(!s.insert(7), "duplicate insert is a no-op");
        assert!(s.insert(0x9999));
        assert!(s.contains(7));
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert_eq!(s.len(), 1);
        let drained = s.take_all();
        assert_eq!(drained, vec![0x9999]);
        assert!(s.is_empty());
    }
}
