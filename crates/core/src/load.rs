//! Server load model and thresholds.
//!
//! The paper (§6): "each server periodically computes a load value, based on
//! the number of queries it currently stores and the cumulative data rate it
//! currently handles. For query-processing applications, this load is
//! usually linear in the data rate, and logarithmic in the number of
//! queries. Overload and underload conditions are detected by comparing
//! this load value to pre-defined thresholds."

use std::fmt;

/// Load contributed by one key group: data rate plus resident query count.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GroupLoad {
    /// Cumulative data rate currently directed at the group (packets/sec).
    pub data_rate: f64,
    /// Number of continuous queries stored for the group.
    pub queries: u64,
}

impl GroupLoad {
    /// A zero load.
    pub fn zero() -> Self {
        GroupLoad::default()
    }

    /// Component-wise sum.
    pub fn combined(self, other: GroupLoad) -> GroupLoad {
        GroupLoad {
            data_rate: self.data_rate + other.data_rate,
            queries: self.queries + other.queries,
        }
    }
}

/// The query-stream load model: `rate_weight · data_rate +
/// query_weight · log₂(1 + queries)`.
///
/// The weights are calibration constants (the paper reports only relative
/// loads as % of capacity); `DESIGN.md` §5 records the values used for the
/// figure reproductions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryStreamLoadModel {
    /// Load units per packet/sec of data rate.
    pub rate_weight: f64,
    /// Load units per doubling of resident queries.
    pub query_weight: f64,
}

impl QueryStreamLoadModel {
    /// The calibration used by the figure experiments.
    pub fn paper_calibration() -> Self {
        QueryStreamLoadModel {
            rate_weight: 1.0,
            query_weight: 10.0,
        }
    }

    /// Load value of a single group.
    pub fn group_load(&self, load: GroupLoad) -> f64 {
        self.rate_weight * load.data_rate + self.query_weight * (1.0 + load.queries as f64).log2()
    }

    /// Total server load across its active groups.
    pub fn server_load<I: IntoIterator<Item = GroupLoad>>(&self, groups: I) -> f64 {
        groups.into_iter().map(|g| self.group_load(g)).sum()
    }
}

impl Default for QueryStreamLoadModel {
    fn default() -> Self {
        Self::paper_calibration()
    }
}

/// A server's position relative to the configured thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadLevel {
    /// Below the underload threshold: a consolidation candidate.
    Underloaded,
    /// Between the thresholds: no action.
    Nominal,
    /// Above the overload threshold: must shed load.
    Overloaded,
}

impl LoadLevel {
    /// Classifies a load value against thresholds expressed in absolute
    /// load units.
    ///
    /// # Panics
    ///
    /// Panics if `underload > overload`.
    pub fn classify(load: f64, underload: f64, overload: f64) -> LoadLevel {
        assert!(
            underload <= overload,
            "underload threshold {underload} exceeds overload threshold {overload}"
        );
        if load > overload {
            LoadLevel::Overloaded
        } else if load < underload {
            LoadLevel::Underloaded
        } else {
            LoadLevel::Nominal
        }
    }
}

impl fmt::Display for LoadLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LoadLevel::Underloaded => "underloaded",
            LoadLevel::Nominal => "nominal",
            LoadLevel::Overloaded => "overloaded",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_load_is_linear_in_rate() {
        let m = QueryStreamLoadModel::paper_calibration();
        let base = m.group_load(GroupLoad {
            data_rate: 100.0,
            queries: 0,
        });
        let double = m.group_load(GroupLoad {
            data_rate: 200.0,
            queries: 0,
        });
        assert!((double - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn group_load_is_logarithmic_in_queries() {
        let m = QueryStreamLoadModel::paper_calibration();
        let one = m.group_load(GroupLoad {
            data_rate: 0.0,
            queries: 1,
        });
        let big = m.group_load(GroupLoad {
            data_rate: 0.0,
            queries: 1023,
        });
        // 1→2 queries is one doubling; 1023 queries is ten doublings.
        assert!((one - 10.0).abs() < 1e-9);
        assert!((big - 100.0).abs() < 0.1);
    }

    #[test]
    fn server_load_sums_groups() {
        let m = QueryStreamLoadModel::paper_calibration();
        let groups = vec![
            GroupLoad {
                data_rate: 10.0,
                queries: 0,
            },
            GroupLoad {
                data_rate: 5.0,
                queries: 0,
            },
        ];
        assert!((m.server_load(groups) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn combined_adds_componentwise() {
        let a = GroupLoad {
            data_rate: 1.0,
            queries: 2,
        };
        let b = GroupLoad {
            data_rate: 3.0,
            queries: 4,
        };
        let c = a.combined(b);
        assert_eq!(c.data_rate, 4.0);
        assert_eq!(c.queries, 6);
    }

    #[test]
    fn classify_levels() {
        assert_eq!(
            LoadLevel::classify(10.0, 54.0, 90.0),
            LoadLevel::Underloaded
        );
        assert_eq!(LoadLevel::classify(70.0, 54.0, 90.0), LoadLevel::Nominal);
        assert_eq!(LoadLevel::classify(95.0, 54.0, 90.0), LoadLevel::Overloaded);
        // Boundaries are inclusive-nominal.
        assert_eq!(LoadLevel::classify(54.0, 54.0, 90.0), LoadLevel::Nominal);
        assert_eq!(LoadLevel::classify(90.0, 54.0, 90.0), LoadLevel::Nominal);
    }

    #[test]
    #[should_panic(expected = "exceeds overload")]
    fn classify_rejects_inverted_thresholds() {
        LoadLevel::classify(1.0, 90.0, 54.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(LoadLevel::Overloaded.to_string(), "overloaded");
    }
}
