//! Client-side depth determination: the modified binary search of §5.
//!
//! A client inserting or querying a key `k` must find the *current depth*
//! `d_c` of `k`'s active key group before the DHT can route to the right
//! server. It probes with guessed depths; a wrong guess earns an
//! `INCORRECT_DEPTH(d_min)` response carrying the longest prefix match
//! between `k` and the contacted server's entries.
//!
//! # Why the update rules are sound
//!
//! Write `x = Shape(k, d)` for the zero-padded probe key. CLASH maintains
//! the invariant that every active group `G` is owned by
//! `Map(f(G.virtual_key))` (splits route right children through the DHT;
//! left children keep the same virtual key). Two consequences, both
//! encoded as property tests in this crate:
//!
//! 1. **If `d ≤ d_c`**, the group containing `x` is at least `d` deep (were
//!    it shallower, its prefix would also be a prefix of `k`, contradicting
//!    `d ≤ d_c`), and its zero-padded virtual key is exactly `x` — so the
//!    contacted server `Map(f(x))` holds an entry sharing ≥ `d` bits with
//!    `k`: the response satisfies `d_min ≥ d`.
//! 2. **No server's entry shares more than `d_c − 1` bits with `k`** unless
//!    it owns `k` (an entry sharing ≥ `d_c` bits would extend `k`'s active
//!    group, which is impossible in a prefix-free cover) — so in every
//!    `INCORRECT_DEPTH` response, `d_min ≤ d_c − 1`, i.e. `d_c ≥ d_min+1`.
//!
//! Together: `d_min ≥ d ⇒ d ≤ d_c` (raise `low` to `d_min+1`), and
//! `d_min < d ⇒ d > d_c` (cap `high` at `d−1`, and still raise `low`).
//! Every failed probe strictly shrinks `[low, high]`, and a probe at
//! `d = d_c` contacts the true owner and succeeds — convergence is
//! guaranteed, in at most ⌈log₂(N)⌉+1 probes (usually far fewer, because
//! `d_min` jumps past many levels at once, matching the paper's
//! observation).

use crate::error::ClashError;
use crate::messages::AcceptObjectResponse;

/// The state of one depth search.
///
/// # Example
///
/// ```
/// use clash_core::client::{DepthSearch, SearchOutcome};
/// use clash_core::messages::AcceptObjectResponse;
///
/// let mut search = DepthSearch::new(24);
/// let guess = search.next_guess();
/// // The probed server was wrong and reported a 9-bit longest match:
/// let outcome = search
///     .record(guess, AcceptObjectResponse::IncorrectDepth { d_min: Some(9) })
///     .unwrap();
/// assert!(matches!(outcome, SearchOutcome::Continue { .. }));
/// assert!(search.low() >= 10);
/// ```
#[derive(Debug, Clone)]
pub struct DepthSearch {
    low: u32,
    high: u32,
    width: u32,
    probes: u32,
    hint: Option<u32>,
}

/// The result of recording a probe response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOutcome {
    /// The correct depth was found.
    Found {
        /// The confirmed depth.
        depth: u32,
        /// Total probes used.
        probes: u32,
    },
    /// Keep probing with the suggested next guess.
    Continue {
        /// The next depth to try.
        next_guess: u32,
    },
}

impl DepthSearch {
    /// Starts a search over depths `[0, width]`.
    pub fn new(width: u32) -> Self {
        DepthSearch {
            low: 0,
            high: width,
            width,
            probes: 0,
            hint: None,
        }
    }

    /// Starts a search with a first-guess hint (e.g. the depth from the
    /// client's previous lookup — stream clients re-locate after every key
    /// change, and the new depth is usually close to the old one).
    pub fn with_hint(width: u32, hint: u32) -> Self {
        DepthSearch {
            hint: Some(hint.min(width)),
            ..DepthSearch::new(width)
        }
    }

    /// Current lower bound on the true depth.
    pub fn low(&self) -> u32 {
        self.low
    }

    /// Current upper bound on the true depth.
    pub fn high(&self) -> u32 {
        self.high
    }

    /// Probes recorded so far.
    pub fn probes(&self) -> u32 {
        self.probes
    }

    /// The next depth to probe: the hint if fresh and in range, otherwise
    /// the midpoint of the remaining range.
    pub fn next_guess(&self) -> u32 {
        if let Some(h) = self.hint {
            if h >= self.low && h <= self.high {
                return h;
            }
        }
        self.low + (self.high - self.low) / 2
    }

    /// Records the server's response to a probe at `guess`.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::SearchDiverged`] if the bounds cross or the
    /// probe budget (`width + 2`) is exhausted — either indicates a broken
    /// protocol invariant, not a normal condition.
    pub fn record(
        &mut self,
        guess: u32,
        response: AcceptObjectResponse,
    ) -> Result<SearchOutcome, ClashError> {
        self.probes += 1;
        self.hint = None; // a hint is only good for the first probe
        match response {
            AcceptObjectResponse::Ok { depth } | AcceptObjectResponse::OkCorrected { depth } => {
                Ok(SearchOutcome::Found {
                    depth,
                    probes: self.probes,
                })
            }
            AcceptObjectResponse::IncorrectDepth { d_min } => {
                match d_min {
                    Some(d_min) if d_min >= guess => {
                        // Property 1: the true depth is deeper than d_min.
                        self.low = self.low.max(d_min + 1);
                    }
                    Some(d_min) => {
                        // Both bounds: d_c ≥ d_min+1 and d_c < guess.
                        self.low = self.low.max(d_min + 1);
                        self.high = self.high.min(guess.saturating_sub(1));
                    }
                    None => {
                        // An empty responder proves the guess was too deep
                        // (see the module docs): d_c < guess.
                        self.high = self.high.min(guess.saturating_sub(1));
                    }
                }
                if self.low > self.high || self.probes > self.width + 2 {
                    return Err(ClashError::SearchDiverged {
                        probes: self.probes,
                    });
                }
                Ok(SearchOutcome::Continue {
                    next_guess: self.next_guess(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_on_ok() {
        let mut s = DepthSearch::new(24);
        let g = s.next_guess();
        assert_eq!(g, 12);
        let out = s.record(g, AcceptObjectResponse::Ok { depth: g }).unwrap();
        assert_eq!(
            out,
            SearchOutcome::Found {
                depth: 12,
                probes: 1
            }
        );
    }

    #[test]
    fn corrected_depth_short_circuits() {
        let mut s = DepthSearch::new(24);
        let out = s
            .record(12, AcceptObjectResponse::OkCorrected { depth: 7 })
            .unwrap();
        assert_eq!(
            out,
            SearchOutcome::Found {
                depth: 7,
                probes: 1
            }
        );
    }

    #[test]
    fn dmin_above_guess_raises_low_only() {
        let mut s = DepthSearch::new(24);
        s.record(8, AcceptObjectResponse::IncorrectDepth { d_min: Some(13) })
            .unwrap();
        assert_eq!(s.low(), 14);
        assert_eq!(s.high(), 24);
    }

    #[test]
    fn dmin_below_guess_tightens_both() {
        let mut s = DepthSearch::new(24);
        s.record(16, AcceptObjectResponse::IncorrectDepth { d_min: Some(4) })
            .unwrap();
        assert_eq!(s.low(), 5);
        assert_eq!(s.high(), 15);
    }

    #[test]
    fn crossing_bounds_is_an_error() {
        let mut s = DepthSearch::new(8);
        s.record(6, AcceptObjectResponse::IncorrectDepth { d_min: Some(6) })
            .unwrap();
        assert_eq!(s.low(), 7);
        // A contradictory response: caps high at 6, below low = 7.
        let err = s.record(7, AcceptObjectResponse::IncorrectDepth { d_min: Some(1) });
        assert!(matches!(err, Err(ClashError::SearchDiverged { .. })));
    }

    #[test]
    fn empty_responder_lowers_high_only() {
        let mut s = DepthSearch::new(24);
        s.record(12, AcceptObjectResponse::IncorrectDepth { d_min: None })
            .unwrap();
        assert_eq!(s.low(), 0);
        assert_eq!(s.high(), 11);
    }

    #[test]
    fn hint_used_once() {
        let mut s = DepthSearch::with_hint(24, 9);
        assert_eq!(s.next_guess(), 9);
        s.record(9, AcceptObjectResponse::IncorrectDepth { d_min: Some(9) })
            .unwrap();
        // After the first miss, back to midpoint of [10, 24].
        assert_eq!(s.next_guess(), 17);
    }

    #[test]
    fn out_of_range_hint_ignored() {
        let s = DepthSearch::with_hint(8, 30);
        assert_eq!(s.next_guess(), 8); // clamped to width, within [0,8]
        let mut s2 = DepthSearch::with_hint(24, 3);
        s2.record(20, AcceptObjectResponse::IncorrectDepth { d_min: Some(20) })
            .unwrap();
        // low is now 21; a stale hint of 3 must not be suggested.
        assert!(s2.next_guess() >= 21);
    }

    #[test]
    fn probe_budget_is_enforced() {
        let mut s = DepthSearch::new(4);
        // Keep feeding non-informative responses that never terminate.
        let mut result = Ok(SearchOutcome::Continue { next_guess: 0 });
        for _ in 0..10 {
            let g = s.next_guess();
            // d_min == guess keeps raising low by one... until it errors.
            result = s.record(g, AcceptObjectResponse::IncorrectDepth { d_min: Some(g) });
            if result.is_err() {
                break;
            }
        }
        assert!(result.is_err(), "budget should have tripped");
    }

    /// Simulated search against a ground-truth depth using responses that
    /// follow the soundness properties: converges within log2(N)+1 probes.
    #[test]
    fn converges_against_honest_oracle() {
        for width in [8u32, 16, 24] {
            for true_depth in 0..=width {
                let mut s = DepthSearch::new(width);
                let mut found = None;
                for _ in 0..(width + 2) {
                    let g = s.next_guess();
                    // Honest oracle: d == d_c → Ok; otherwise d_min follows
                    // the worst-case-but-sound envelope.
                    let resp = if g == true_depth {
                        AcceptObjectResponse::Ok { depth: g }
                    } else if g < true_depth {
                        // property 1: d_min ≥ g, and ≤ d_c − 1.
                        AcceptObjectResponse::IncorrectDepth { d_min: Some(g) }
                    } else if true_depth == 0 {
                        // d_c = 0: the single root group is the whole
                        // cover, so every non-owner server is empty.
                        AcceptObjectResponse::IncorrectDepth { d_min: None }
                    } else {
                        // property 2: d_min ≤ d_c − 1 < g.
                        AcceptObjectResponse::IncorrectDepth {
                            d_min: Some(true_depth - 1),
                        }
                    };
                    match s.record(g, resp).unwrap() {
                        SearchOutcome::Found { depth, probes } => {
                            assert_eq!(depth, true_depth);
                            let bound = 32 - (width + 1).leading_zeros() + 1;
                            assert!(
                                probes <= bound,
                                "width {width} depth {true_depth}: {probes} probes > {bound}"
                            );
                            found = Some(depth);
                            break;
                        }
                        SearchOutcome::Continue { .. } => {}
                    }
                }
                assert_eq!(found, Some(true_depth));
            }
        }
    }
}
