//! Property-based tests for the CLASH protocol theorems.
//!
//! These encode the correctness arguments from `clash_core::client`'s
//! module documentation against *real* cluster states produced by random
//! workloads — not hand-built oracles.

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_core::messages::AcceptObjectResponse;
use clash_core::ServerId;
use clash_keyspace::key::Key;
use proptest::prelude::*;

fn key(bits: u64) -> Key {
    Key::from_bits_truncated(bits, ClashConfig::small_test().key_width)
}

/// Builds a cluster, applies a random workload and runs load checks.
fn loaded_cluster(
    servers: usize,
    seed: u64,
    attachments: &[(u64, f64)],
    checks: usize,
) -> ClashCluster {
    let mut c = ClashCluster::new(ClashConfig::small_test(), servers, seed).unwrap();
    for (i, &(bits, rate)) in attachments.iter().enumerate() {
        c.attach_source(i as u64, key(bits), rate).unwrap();
    }
    for _ in 0..checks {
        c.run_load_check().unwrap();
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The global active groups always partition the key space, whatever
    /// the workload and however many load checks ran.
    #[test]
    fn active_groups_always_partition(
        servers in 1usize..24,
        seed in 0u64..1000,
        attachments in prop::collection::vec((0u64..256, 0.5f64..4.0), 0..80),
        checks in 0usize..4,
    ) {
        let c = loaded_cluster(servers, seed, &attachments, checks);
        prop_assert!(c.global_cover().is_partition());
        c.verify_consistency();
    }

    /// Client locate always agrees with the oracle and converges within
    /// the paper's bound (≈ log₂ N probes; N = 8 here so ⌈log₂ 9⌉ + 1 = 5).
    #[test]
    fn locate_matches_oracle_and_converges_fast(
        servers in 1usize..24,
        seed in 0u64..1000,
        attachments in prop::collection::vec((0u64..256, 0.5f64..4.0), 0..80),
        probes in prop::collection::vec(0u64..256, 1..20),
    ) {
        let mut c = loaded_cluster(servers, seed, &attachments, 2);
        for bits in probes {
            let k = key(bits);
            let placement = c.locate(k).unwrap();
            let (oracle_server, oracle_group) = c.oracle_locate(k).unwrap();
            prop_assert_eq!(placement.server, oracle_server);
            prop_assert_eq!(placement.group, oracle_group);
            prop_assert!(placement.probes <= 5, "{} probes", placement.probes);
        }
    }

    /// The d_min soundness theorem: for any reachable cluster state, any
    /// server's INCORRECT_DEPTH response about any key satisfies
    /// d_min ≤ d_c − 1 (property 2 of the search), and an empty response
    /// implies nothing is stored there at all.
    #[test]
    fn dmin_is_bounded_by_true_depth(
        servers in 2usize..24,
        seed in 0u64..1000,
        attachments in prop::collection::vec((0u64..256, 0.5f64..4.0), 1..80),
        probe_bits in 0u64..256,
        guess in 0u32..=8,
    ) {
        let c = loaded_cluster(servers, seed, &attachments, 2);
        let k = key(probe_bits);
        let (_, oracle_group) = c.oracle_locate(k).unwrap();
        let d_c = oracle_group.depth();
        // Ask EVERY server, not just the protocol-chosen one: the theorem
        // is global.
        for id in c.server_ids() {
            let server = c.server(id).unwrap();
            let resp = server.table().classify_object(k, guess);
            match resp {
                AcceptObjectResponse::Ok { depth }
                | AcceptObjectResponse::OkCorrected { depth } => {
                    // Only the true owner may accept, at the true depth.
                    prop_assert_eq!(depth, d_c);
                    let (oracle_server, _) = c.oracle_locate(k).unwrap();
                    prop_assert_eq!(id, oracle_server);
                }
                AcceptObjectResponse::IncorrectDepth { d_min: Some(m) } => {
                    prop_assert!(
                        m < d_c,
                        "server {} reported d_min {} but true depth is {}",
                        id, m, d_c
                    );
                }
                AcceptObjectResponse::IncorrectDepth { d_min: None } => {
                    prop_assert_eq!(server.table().len(), 0);
                }
            }
        }
        let _ = c;
    }

    /// Property 1 of the search: probing at d ≤ d_c through the protocol's
    /// own Map() contacts a server whose d_min response is ≥ d (or accepts).
    #[test]
    fn shallow_probes_get_deep_dmin(
        servers in 2usize..24,
        seed in 0u64..1000,
        attachments in prop::collection::vec((0u64..256, 0.5f64..4.0), 1..80),
        probe_bits in 0u64..256,
    ) {
        let c = loaded_cluster(servers, seed, &attachments, 2);
        let k = key(probe_bits);
        let (_, oracle_group) = c.oracle_locate(k).unwrap();
        let d_c = oracle_group.depth();
        for d in 0..=d_c {
            // The server the DHT maps the probe to:
            let group_guess = clash_keyspace::prefix::Prefix::of_key(k, d);
            // Use locate_hinted machinery indirectly: probe via cluster by
            // asking the mapped owner directly through the oracle-equality
            // of Map(). We reconstruct it with the public API:
            let placement_server = {
                // probing at the true depth resolves the owner; for
                // shallower d we reproduce Map() via a fresh locate of the
                // virtual key at that exact depth.
                let vkey = group_guess.virtual_key();
                let (owner, _) = c.oracle_locate(vkey).unwrap();
                // oracle_locate(vkey) gives the owner of the virtual key's
                // *group*, which for d ≤ d_c is exactly Map(f(vkey)).
                owner
            };
            let resp = c
                .server(placement_server)
                .unwrap()
                .table()
                .classify_object(k, d);
            match resp {
                AcceptObjectResponse::Ok { .. }
                | AcceptObjectResponse::OkCorrected { .. } => {}
                AcceptObjectResponse::IncorrectDepth { d_min: Some(m) } => {
                    prop_assert!(m >= d, "probe at {} got d_min {}", d, m);
                }
                AcceptObjectResponse::IncorrectDepth { d_min: None } => {
                    prop_assert!(false, "owner of the zero-padded key cannot be empty");
                }
            }
        }
    }

    /// Live membership: lookups agree with the oracle while joins,
    /// graceful leaves and crashes interleave with load checks and
    /// workload bursts, and every membership event leaves the cluster
    /// consistent (the maintenance protocol stabilizes inside each
    /// membership call; load checks and spot lookups act as the live
    /// traffic between events).
    #[test]
    fn membership_churn_keeps_lookups_oracle_consistent(
        servers in 2usize..10,
        seed in 0u64..500,
        ops in prop::collection::vec((0u8..6, 0u64..u64::MAX), 1..14),
    ) {
        let config = ClashConfig::small_test();
        let mut c = ClashCluster::new(config, servers, seed).unwrap();
        let mut next_source = 0u64;
        for &(op, arg) in &ops {
            match op {
                // Workload burst: heat a quadrant chosen by `arg`.
                0 | 1 => {
                    let quadrant = (arg % 4) << 6;
                    for j in 0..12 {
                        let bits = quadrant | ((arg.wrapping_add(j * 17)) % 64);
                        c.attach_source(next_source, key(bits), 2.0).unwrap();
                        next_source += 1;
                    }
                }
                // Join a fresh server with an arbitrary ring id.
                2 => {
                    let id = ServerId::new(arg, config.hash_space);
                    if c.net().node(id).is_none() {
                        let report = c.join_server(id).unwrap();
                        prop_assert_eq!(report.joined, id);
                    }
                }
                // Graceful drain of an arbitrary server.
                3 => {
                    if c.server_count() > 1 {
                        let ids = c.server_ids();
                        let victim = ids[(arg as usize) % ids.len()];
                        c.leave_server(victim).unwrap();
                    }
                }
                // Crash an arbitrary server.
                4 => {
                    if c.server_count() > 1 {
                        let ids = c.server_ids();
                        let victim = ids[(arg as usize) % ids.len()];
                        c.fail_server(victim).unwrap();
                    }
                }
                // A load-check period elapses.
                _ => {
                    c.run_load_check().unwrap();
                }
            }
            // Every event leaves the cluster fully consistent...
            c.verify_consistency();
            prop_assert!(c.global_cover().is_partition());
            // ...and serving correct, bounded lookups.
            for i in 0..8u64 {
                let k = key((arg.wrapping_add(i * 37)) % 256);
                let placement = c.locate(k).unwrap();
                let (oracle_server, oracle_group) = c.oracle_locate(k).unwrap();
                prop_assert_eq!(placement.server, oracle_server);
                prop_assert_eq!(placement.group, oracle_group);
                prop_assert!(placement.probes <= 5, "{} probes", placement.probes);
            }
        }
        // No data-plane state was lost across all membership changes.
        prop_assert_eq!(c.source_count() as u64, next_source);
        let total: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        prop_assert!((total - next_source as f64 * 2.0).abs() < 1e-6);
    }

    /// Replicated crash recovery is exact and oracle-free: under random
    /// interleavings of joins, graceful leaves, crashes, workload bursts
    /// and load checks with `r ≥ 2`, every crash recovers its groups and
    /// ledgers to exactly the oracle's view (verify_consistency checks
    /// table ↔ oracle ↔ ledger ↔ member-record coherence, and no source
    /// or unit of load may vanish), while the no-oracle-reads-during-
    /// recovery counter stays pinned at 0.
    #[test]
    fn replicated_recovery_is_exact_and_oracle_free(
        servers in 2usize..10,
        seed in 0u64..500,
        ops in prop::collection::vec((0u8..7, 0u64..u64::MAX), 1..14),
    ) {
        let config = ClashConfig::small_test().with_replication(2);
        let mut c = ClashCluster::new(config, servers, seed).unwrap();
        let mut next_source = 0u64;
        for &(op, arg) in &ops {
            match op {
                // Workload burst: heat a quadrant chosen by `arg`.
                0 | 1 => {
                    let quadrant = (arg % 4) << 6;
                    for j in 0..12 {
                        let bits = quadrant | ((arg.wrapping_add(j * 17)) % 64);
                        c.attach_source(next_source, key(bits), 2.0).unwrap();
                        next_source += 1;
                    }
                }
                // Join a fresh server with an arbitrary ring id.
                2 => {
                    let id = ServerId::new(arg, config.hash_space);
                    if c.net().node(id).is_none() {
                        c.join_server(id).unwrap();
                    }
                }
                // Graceful drain of an arbitrary server.
                3 => {
                    if c.server_count() > 1 {
                        let ids = c.server_ids();
                        c.leave_server(ids[(arg as usize) % ids.len()]).unwrap();
                    }
                }
                // Crash an arbitrary server: recovery must be complete
                // (replicas exist for every active group) and oracle-free.
                4 | 5 => {
                    if c.server_count() > 1 {
                        let ids = c.server_ids();
                        let victim = ids[(arg as usize) % ids.len()];
                        let report = c.fail_server(victim).unwrap();
                        prop_assert_eq!(report.groups_lost, 0, "single crash lost groups");
                        prop_assert_eq!(report.groups_deferred, 0, "no partition here");
                        prop_assert_eq!(report.groups_recovered, report.groups_reassigned);
                        prop_assert_eq!(report.sources_lost + report.queries_lost, 0);
                    }
                }
                // A load-check period elapses (replica sync rides along).
                _ => {
                    c.run_load_check().unwrap();
                }
            }
            // After every event: recovered groups + ledgers equal the
            // oracle's view, and recovery never read the oracle.
            prop_assert_eq!(c.recovery_oracle_reads(), 0, "oracle read during recovery");
            c.verify_consistency();
            prop_assert!(c.global_cover().is_partition());
        }
        // No data-plane state was lost across all the crashes.
        prop_assert_eq!(c.source_count() as u64, next_source);
        let total: f64 = c.server_loads().iter().map(|&(_, l)| l).sum();
        prop_assert!((total - next_source as f64 * 2.0).abs() < 1e-6);
        // The clients all still resolve to live owners agreeing with the
        // oracle.
        for i in 0..16u64 {
            let k = key((i * 37) % 256);
            let placement = c.locate(k).unwrap();
            let (oracle_server, oracle_group) = c.oracle_locate(k).unwrap();
            prop_assert_eq!(placement.server, oracle_server);
            prop_assert_eq!(placement.group, oracle_group);
        }
    }

    /// The dirty-tracked candidate sets find exactly the same splits and
    /// merges as a from-scratch full scan: two clusters play the same
    /// random interleaving of workload bursts, detach waves, joins,
    /// graceful leaves, crashes and load checks — one on the optimized
    /// dirty-tracked path, one in the full-scan reference mode — and
    /// every load check must return the identical report, with identical
    /// message accounting and identical global state throughout.
    #[test]
    fn dirty_tracked_load_checks_match_full_scan(
        servers in 2usize..10,
        seed in 0u64..500,
        replication in 0usize..3,
        ops in prop::collection::vec((0u8..8, 0u64..u64::MAX), 1..14),
    ) {
        let config = ClashConfig::small_test().with_replication(replication);
        let mut dirty = ClashCluster::new(config, servers, seed).unwrap();
        let mut full = ClashCluster::new(config, servers, seed).unwrap();
        full.set_full_scan_load_checks(true);
        let mut next_source = 0u64;
        let mut attached: Vec<u64> = Vec::new();
        for &(op, arg) in &ops {
            match op {
                // Workload burst: heat a quadrant chosen by `arg`.
                0 | 1 => {
                    let quadrant = (arg % 4) << 6;
                    for j in 0..12 {
                        let bits = quadrant | ((arg.wrapping_add(j * 17)) % 64);
                        dirty.attach_source(next_source, key(bits), 2.0).unwrap();
                        full.attach_source(next_source, key(bits), 2.0).unwrap();
                        attached.push(next_source);
                        next_source += 1;
                    }
                }
                // Detach wave: cool half the attached sources (drives
                // the merge path's candidate maintenance).
                2 => {
                    let drop_n = attached.len() / 2;
                    for sid in attached.drain(..drop_n) {
                        if dirty.has_source(sid) {
                            dirty.detach_source(sid).unwrap();
                        }
                        if full.has_source(sid) {
                            full.detach_source(sid).unwrap();
                        }
                    }
                }
                // Join a fresh server with an arbitrary ring id.
                3 => {
                    let id = ServerId::new(arg, config.hash_space);
                    if dirty.net().node(id).is_none() {
                        dirty.join_server(id).unwrap();
                        full.join_server(id).unwrap();
                    }
                }
                // Graceful drain of an arbitrary server.
                4 => {
                    if dirty.server_count() > 1 {
                        let ids = dirty.server_ids();
                        let victim = ids[(arg as usize) % ids.len()];
                        dirty.leave_server(victim).unwrap();
                        full.leave_server(victim).unwrap();
                    }
                }
                // Crash an arbitrary server.
                5 => {
                    if dirty.server_count() > 1 {
                        let ids = dirty.server_ids();
                        let victim = ids[(arg as usize) % ids.len()];
                        let ra = dirty.fail_server(victim).unwrap();
                        let rb = full.fail_server(victim).unwrap();
                        prop_assert_eq!(ra, rb, "failure reports diverged");
                    }
                }
                // A load-check period elapses on both.
                _ => {
                    let ra = dirty.run_load_check().unwrap();
                    let rb = full.run_load_check().unwrap();
                    prop_assert_eq!(
                        &ra.splits, &rb.splits,
                        "split decisions diverged"
                    );
                    prop_assert_eq!(
                        &ra.merges, &rb.merges,
                        "merge decisions diverged"
                    );
                    prop_assert_eq!(ra.refusals, rb.refusals, "refusals diverged");
                }
            }
            // Identical message accounting and identical global state
            // after *every* operation, not just load checks.
            prop_assert_eq!(dirty.message_stats(), full.message_stats());
            prop_assert_eq!(
                dirty.global_cover().iter().collect::<Vec<_>>(),
                full.global_cover().iter().collect::<Vec<_>>()
            );
            prop_assert_eq!(dirty.server_loads(), full.server_loads());
            dirty.verify_consistency();
            dirty.verify_candidate_indices();
        }
    }

    /// Ring-arc batched locates are bit-for-bit equivalent to the
    /// sequential path for *every* shard count: two clusters play the
    /// same random interleaving of workload bursts, detach waves, joins,
    /// graceful leaves, crashes and load checks — one fully sequential
    /// (`shards = 0`), one on the plan/route/merge-charge path — and
    /// after every operation (with the batch explicitly flushed) the
    /// message accounting, global cover, per-server loads and all
    /// membership/load-check reports must be identical. The mirror of
    /// `dirty_tracked_load_checks_match_full_scan` for the sharding
    /// layer.
    #[test]
    fn sharded_batching_matches_sequential(
        servers in 2usize..10,
        seed in 0u64..500,
        shards in 1u32..5,
        replication in 0usize..3,
        ops in prop::collection::vec((0u8..8, 0u64..u64::MAX), 1..14),
    ) {
        let config = ClashConfig::small_test().with_replication(replication);
        let mut seq = ClashCluster::new(config, servers, seed).unwrap();
        let mut sharded =
            ClashCluster::new(config.with_shards(shards), servers, seed).unwrap();
        let mut next_source = 0u64;
        let mut attached: Vec<u64> = Vec::new();
        for &(op, arg) in &ops {
            match op {
                // Workload burst: heat a quadrant chosen by `arg`. The
                // whole burst lands in one batch window on the sharded
                // cluster.
                0 | 1 => {
                    let quadrant = (arg % 4) << 6;
                    for j in 0..12 {
                        let bits = quadrant | ((arg.wrapping_add(j * 17)) % 64);
                        let pa = seq.attach_source(next_source, key(bits), 2.0).unwrap();
                        let pb = sharded.attach_source(next_source, key(bits), 2.0).unwrap();
                        prop_assert_eq!(pa, pb, "placements diverged");
                        attached.push(next_source);
                        next_source += 1;
                    }
                }
                // Detach wave: cool half the attached sources.
                2 => {
                    let drop_n = attached.len() / 2;
                    for sid in attached.drain(..drop_n) {
                        if seq.has_source(sid) {
                            seq.detach_source(sid).unwrap();
                        }
                        if sharded.has_source(sid) {
                            sharded.detach_source(sid).unwrap();
                        }
                    }
                }
                // Join a fresh server with an arbitrary ring id (an
                // implicit flush barrier on the sharded cluster).
                3 => {
                    let id = ServerId::new(arg, config.hash_space);
                    if seq.net().node(id).is_none() {
                        let ra = seq.join_server(id).unwrap();
                        let rb = sharded.join_server(id).unwrap();
                        prop_assert_eq!(ra, rb, "join reports diverged");
                    }
                }
                // Graceful drain of an arbitrary server.
                4 => {
                    if seq.server_count() > 1 {
                        let ids = seq.server_ids();
                        let victim = ids[(arg as usize) % ids.len()];
                        let ra = seq.leave_server(victim).unwrap();
                        let rb = sharded.leave_server(victim).unwrap();
                        prop_assert_eq!(ra, rb, "leave reports diverged");
                    }
                }
                // Crash an arbitrary server.
                5 => {
                    if seq.server_count() > 1 {
                        let ids = seq.server_ids();
                        let victim = ids[(arg as usize) % ids.len()];
                        let ra = seq.fail_server(victim).unwrap();
                        let rb = sharded.fail_server(victim).unwrap();
                        prop_assert_eq!(ra, rb, "failure reports diverged");
                    }
                }
                // A load-check period elapses on both (the natural
                // flush barrier).
                _ => {
                    let ra = seq.run_load_check().unwrap();
                    let rb = sharded.run_load_check().unwrap();
                    prop_assert_eq!(ra, rb, "load-check reports diverged");
                }
            }
            // Close any open batch window, then demand identical
            // observable state after *every* operation.
            sharded.flush_batch().unwrap();
            prop_assert_eq!(seq.message_stats(), sharded.message_stats());
            prop_assert_eq!(
                seq.global_cover().iter().collect::<Vec<_>>(),
                sharded.global_cover().iter().collect::<Vec<_>>()
            );
            prop_assert_eq!(seq.server_loads(), sharded.server_loads());
            sharded.verify_consistency();
            sharded.verify_candidate_indices();
        }
    }

    /// Cross-arc split and merge equivalence: with `shards >= 2` a
    /// split's right child regularly lands on a server in a *different*
    /// ring arc than the splitter, and the later merge pulls that child
    /// back across the same arc boundary — the exact cross-shard
    /// traffic the arc-sharded candidate sets, the split-route
    /// speculation and the merge queue must route deterministically.
    /// The sharded cluster must stay bit-for-bit equal to the
    /// sequential one through the full heat/cool cycle, and the case is
    /// only counted when it actually witnessed at least one cross-arc
    /// split *and* one cross-arc merge (placement is hash-uniform, so
    /// rejections are rare; `prop_assume` keeps silent coverage loss
    /// impossible rather than asserting on luck).
    #[test]
    fn cross_arc_splits_and_merges_match_sequential(
        servers in 8usize..16,
        seed in 0u64..300,
        shards in 2u32..5,
        hot_region in 0u64..4,
    ) {
        let config = ClashConfig::small_test();
        let bits = config.hash_space.bits();
        let arc = |id: ServerId| {
            clash_simkernel::merge::arc_of(id.value(), shards as usize, bits)
        };
        let mut seq = ClashCluster::new(config, servers, seed).unwrap();
        let mut sharded =
            ClashCluster::new(config.with_shards(shards), servers, seed).unwrap();
        let mut cross_arc_splits = 0usize;
        let mut cross_arc_merges = 0usize;
        // Heat one quadrant well past one server's capacity.
        for i in 0..96u64 {
            let k = key((hot_region << 6) | (i % 64));
            let pa = seq.attach_source(i, k, 2.0).unwrap();
            let pb = sharded.attach_source(i, k, 2.0).unwrap();
            prop_assert_eq!(pa, pb, "placements diverged");
        }
        for _ in 0..4 {
            let ra = seq.run_load_check().unwrap();
            let rb = sharded.run_load_check().unwrap();
            prop_assert_eq!(&ra, &rb, "hot-phase load checks diverged");
            cross_arc_splits += ra
                .splits
                .iter()
                .filter(|s| arc(s.server) != arc(s.right_child_server))
                .count();
        }
        // Cool everything and let merges consolidate the children back.
        for i in 0..96u64 {
            seq.detach_source(i).unwrap();
            sharded.detach_source(i).unwrap();
        }
        for _ in 0..16 {
            // A merge's victim is the right child's home *before* the
            // check; snapshot the owners the records will refer to.
            let owners: Vec<_> = sharded
                .global_cover()
                .iter()
                .map(|g| (g, sharded.group_owner(g)))
                .collect();
            let ra = seq.run_load_check().unwrap();
            let rb = sharded.run_load_check().unwrap();
            prop_assert_eq!(&ra, &rb, "cold-phase load checks diverged");
            for m in &ra.merges {
                let Ok((_, right)) = m.parent.split() else { continue };
                let victim = owners
                    .iter()
                    .find(|(g, _)| *g == right)
                    .and_then(|(_, o)| *o);
                if let Some(victim) = victim {
                    if arc(victim) != arc(m.server) {
                        cross_arc_merges += 1;
                    }
                }
            }
        }
        sharded.verify_consistency();
        sharded.verify_candidate_indices();
        prop_assume!(cross_arc_splits > 0);
        prop_assume!(cross_arc_merges > 0);
    }

    /// Heating then cooling a region splits and then re-merges it; the
    /// cover stays a partition throughout and depth returns to the roots.
    #[test]
    fn split_merge_lifecycle(
        servers in 2usize..16,
        seed in 0u64..500,
        hot_region in 0u64..4,
    ) {
        let mut c = ClashCluster::new(ClashConfig::small_test(), servers, seed).unwrap();
        // Heat one quadrant (depth-2 group) well past capacity.
        for i in 0..80u64 {
            let bits = (hot_region << 6) | (i % 64);
            c.attach_source(i, key(bits), 2.0).unwrap();
        }
        for _ in 0..4 {
            c.run_load_check().unwrap();
        }
        let hot_depth = c.depth_stats().unwrap().2;
        prop_assert!(hot_depth > 2, "hot region must split (depth {hot_depth})");
        for i in 0..80u64 {
            c.detach_source(i).unwrap();
        }
        for _ in 0..16 {
            c.run_load_check().unwrap();
        }
        let (min_d, _, max_d) = c.depth_stats().unwrap();
        prop_assert_eq!(min_d, 2, "roots never collapse");
        prop_assert_eq!(max_d, 2, "cold system fully consolidates");
        prop_assert!(c.global_cover().is_partition());
    }
}
