//! Mobiscope-style vehicle tracking — the paper's motivating telematics
//! application (§6 cites Mobiscope as the example deployment).
//!
//! Vehicles stream position updates keyed by a quad-tree encoding of
//! their map cell; dispatchers register continuous queries over map
//! regions. CLASH clusters nearby vehicles on the same server (shared key
//! prefixes) and splits the downtown hotspot when rush hour hits, while
//! the continuous-query engine keeps delivering matches.
//!
//! Run with: `cargo run --release --example mobiscope`

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_keyspace::key::KeyWidth;
use clash_keyspace::keygen::{GridPoint, KeyGen, QuadTreeEncoder};
use clash_keyspace::prefix::Prefix;
use clash_simkernel::rng::DetRng;
use clash_streamquery::engine::QueryEngine;
use clash_streamquery::query::ContinuousQuery;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16×16-cell city map → 8-bit quad-tree keys.
    let encoder = QuadTreeEncoder::new(4)?;
    let width: KeyWidth = encoder.key_width();
    let config = ClashConfig {
        key_width: width,
        max_depth: width.get(),
        ..ClashConfig::small_test()
    };
    let mut cluster = ClashCluster::new(config, 12, 7)?;
    let mut rng = DetRng::new(99);

    // 150 vehicles: two thirds downtown (cells 4..8 × 4..8), the rest
    // spread across the city.
    let mut positions = Vec::new();
    for v in 0..150u64 {
        let downtown = v % 3 != 0;
        let (x, y) = if downtown {
            (4 + rng.uniform_u64(4), 4 + rng.uniform_u64(4))
        } else {
            (rng.uniform_u64(16), rng.uniform_u64(16))
        };
        let cell = GridPoint::new(x, y);
        let key = encoder.encode(&cell)?;
        cluster.attach_source(v, key, 2.0)?;
        positions.push((v, cell, key));
    }
    println!("150 vehicles attached (100 downtown); total 300 pkt/s");

    // A dispatcher subscribes to the downtown quadrant and a suburb.
    let mut engine = QueryEngine::new(width);
    let downtown_region = Prefix::of_key(encoder.encode(&GridPoint::new(5, 5))?, 4);
    let suburb_region = Prefix::of_key(encoder.encode(&GridPoint::new(14, 2))?, 4);
    engine.register(ContinuousQuery::new(1, downtown_region));
    engine.register(ContinuousQuery::new(2, suburb_region));
    cluster.attach_query(1, downtown_region.virtual_key())?;
    cluster.attach_query(2, suburb_region.virtual_key())?;

    // Rush hour: the load check splits the downtown groups.
    let report = cluster.run_load_check()?;
    println!("rush hour load check: {} splits", report.splits.len());
    let (_, _, dmax) = cluster.depth_stats().expect("groups exist");
    println!("deepest key group now at depth {dmax} (started at 2)");
    assert!(cluster.global_cover().is_partition());

    // The query engine still matches every downtown update.
    let mut downtown_updates = 0;
    let mut matched = 0;
    for &(_, cell, key) in &positions {
        let hits = engine.ingest(key);
        if downtown_region.contains(key) {
            downtown_updates += 1;
            assert!(hits.contains(&1), "downtown update must match at {cell:?}");
        }
        matched += hits.len();
    }
    println!(
        "streamed {} updates: {downtown_updates} downtown, {matched} query deliveries",
        positions.len()
    );

    // Vehicles near each other share servers (content locality): check
    // two adjacent downtown cells end up in the same key group or on
    // sibling groups.
    let a = cluster
        .oracle_locate(encoder.encode(&GridPoint::new(5, 5))?)
        .expect("covered");
    let b = cluster
        .oracle_locate(encoder.encode(&GridPoint::new(5, 6))?)
        .expect("covered");
    println!(
        "adjacent cells (5,5) and (5,6): groups {} and {} (servers {} and {})",
        a.1, b.1, a.0, b.0
    );

    // Night: vehicles park, load evaporates, CLASH consolidates.
    for v in 0..150u64 {
        cluster.detach_source(v)?;
    }
    for _ in 0..8 {
        cluster.run_load_check()?;
    }
    let (_, _, dmax) = cluster.depth_stats().expect("groups exist");
    println!("after midnight, max depth back to {dmax}");
    Ok(())
}
