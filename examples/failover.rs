//! Failure injection and recovery: crash the busiest server mid-run and
//! watch the system reassign its key groups through the DHT, repair
//! dangling tree pointers, and keep serving lookups.
//!
//! (The paper leaves fault handling to the DHT layer's replication; this
//! example exercises the crash-recovery extension documented in
//! DESIGN.md §7.)
//!
//! Run with: `cargo run --release --example failover`

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_keyspace::key::Key;
use clash_simkernel::rng::DetRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClashConfig::small_test();
    let mut cluster = ClashCluster::new(config, 12, 314)?;
    let mut rng = DetRng::new(9);

    // A skewed streaming population: the '11*' quadrant is hot.
    for i in 0..140u64 {
        let bits = if rng.chance(0.7) {
            0b1100_0000 | rng.uniform_u64(64)
        } else {
            rng.uniform_u64(256)
        };
        cluster.attach_source(i, Key::from_bits_truncated(bits, config.key_width), 2.0)?;
    }
    cluster.run_load_check()?;
    println!(
        "steady state: {} groups across {} servers, {} splits so far",
        cluster.global_cover().len(),
        cluster.servers_with_groups(),
        cluster.message_stats().splits
    );

    // Crash the busiest server.
    let (victim, load) = cluster
        .server_loads()
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("servers exist");
    println!("crashing server {victim} (load {load:.0} units)...");
    let report = cluster.fail_server(victim)?;
    println!(
        "recovery: {} groups re-homed, {} orphaned parents, {} right-child pointers repaired",
        report.groups_reassigned, report.orphaned_parents, report.repaired_right_children
    );

    // The invariants held through the crash...
    cluster.verify_consistency();
    assert!(cluster.global_cover().is_partition());

    // ...and every key still resolves, never to the corpse.
    let mut probes_total = 0;
    for bits in 0..=255u64 {
        let placement = cluster.locate(Key::from_bits_truncated(bits, config.key_width))?;
        assert_ne!(placement.server, victim, "routed to the crashed server");
        probes_total += placement.probes;
    }
    println!(
        "post-crash lookups: 256/256 keys resolved, {:.2} probes on average",
        f64::from(probes_total) / 256.0
    );

    // Load checks keep working; the survivors absorb the load.
    let post = cluster.run_load_check()?;
    println!(
        "next load check: {} splits, {} merges — the fleet adapts and moves on",
        post.splits.len(),
        post.merges.len()
    );
    Ok(())
}
