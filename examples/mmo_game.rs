//! Massively-multiplayer game sharding — the application the paper's
//! conclusion singles out ("we are currently building a CLASH-based
//! middleware for online games").
//!
//! The game world is a quad-tree of zones. Players cluster around a world
//! event ("dragon raid"), overloading the shard that owns that region;
//! CLASH splits the zone across more shard servers *only while the event
//! lasts*, then consolidates — the utility-computing story of §1, with
//! per-phase accounting of servers in use.
//!
//! Run with: `cargo run --release --example mmo_game`

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_keyspace::keygen::{GridPoint, KeyGen, QuadTreeEncoder};
use clash_simkernel::rng::DetRng;

fn servers_in_use(cluster: &ClashCluster) -> usize {
    cluster
        .server_ids()
        .into_iter()
        .filter(|&id| cluster.server(id).is_some_and(|s| s.current_load() > 1.0))
        .count()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 32×32 world grid → 10-bit zone keys.
    let encoder = QuadTreeEncoder::new(5)?;
    let config = ClashConfig {
        key_width: encoder.key_width(),
        max_depth: encoder.key_width().get(),
        capacity: 120.0,
        ..ClashConfig::small_test()
    };
    let mut cluster = ClashCluster::new(config, 20, 2024)?;
    let mut rng = DetRng::new(5);

    // 200 players roam uniformly; each player's client streams 1 pkt/s.
    for p in 0..200u64 {
        let pos = GridPoint::new(rng.uniform_u64(32), rng.uniform_u64(32));
        cluster.attach_source(p, encoder.encode(&pos)?, 1.0)?;
    }
    cluster.run_load_check()?;
    let baseline_servers = servers_in_use(&cluster);
    println!("exploring phase: {baseline_servers} shard servers in use for 200 players");

    // The dragon raid: 160 players converge on zone (12..14, 20..22) and
    // start spamming abilities (5 pkt/s each).
    for p in 0..160u64 {
        let pos = GridPoint::new(12 + rng.uniform_u64(2), 20 + rng.uniform_u64(2));
        cluster.move_source_with_rate(p, encoder.encode(&pos)?, Some(5.0))?;
    }
    let mut raid_splits = 0;
    for _ in 0..4 {
        raid_splits += cluster.run_load_check()?.splits.len();
    }
    let raid_servers = servers_in_use(&cluster);
    let (_, _, dmax) = cluster.depth_stats().expect("groups exist");
    println!(
        "dragon raid: {raid_splits} zone splits, {raid_servers} shard servers in use, \
         hottest zone now at depth {dmax}"
    );
    assert!(
        raid_servers >= baseline_servers,
        "the raid must not shrink the fleet"
    );
    assert!(cluster.global_cover().is_partition());

    // The raid zone is split deep, but every player still routes to the
    // correct shard in a handful of probes.
    let raid_key = encoder.encode(&GridPoint::new(13, 21))?;
    let placement = cluster.locate(raid_key)?;
    println!(
        "raid-zone lookup: server {} at depth {} in {} probes",
        placement.server, placement.depth, placement.probes
    );

    // Raid over: players disperse and calm down.
    for p in 0..160u64 {
        let pos = GridPoint::new(rng.uniform_u64(32), rng.uniform_u64(32));
        cluster.move_source_with_rate(p, encoder.encode(&pos)?, Some(1.0))?;
    }
    let mut merges = 0;
    for _ in 0..10 {
        merges += cluster.run_load_check()?.merges.len();
    }
    let after_servers = servers_in_use(&cluster);
    let (_, _, dmax) = cluster.depth_stats().expect("groups exist");
    println!(
        "raid over: {merges} consolidations, {after_servers} shard servers in use, \
         max zone depth back to {dmax}"
    );
    println!(
        "on-demand allocation: {baseline_servers} -> {raid_servers} -> {after_servers} servers"
    );
    Ok(())
}
