//! Quickstart: a CLASH cluster in a few lines.
//!
//! Builds a 16-server cluster over a simulated Chord ring, attaches a
//! skewed streaming workload, lets CLASH split the hot key groups, and
//! shows that lookups always land on the right server while the active
//! groups keep partitioning the key space.
//!
//! Run with: `cargo run --release --example quickstart`

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_keyspace::key::Key;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8-bit keys, 16 servers, capacity 100 load units, initial depth 2.
    let config = ClashConfig::small_test();
    let mut cluster = ClashCluster::new(config, 16, 42)?;
    println!(
        "bootstrap: {} initial key groups over {} servers",
        cluster.global_cover().len(),
        cluster.server_count()
    );

    // Attach 120 streaming sources, all hammering the '10*' quadrant
    // (a hotspot: e.g. every vehicle downtown at rush hour).
    for i in 0..120u64 {
        let key = Key::from_bits_truncated(0b1000_0000 | (i % 64), config.key_width);
        cluster.attach_source(i, key, 2.0)?;
    }
    println!(
        "attached 120 sources at 2 pkt/s each; hottest quadrant holds {} pkt/s",
        120.0 * 2.0
    );

    // One load check: overloaded servers shed by binary splitting.
    let report = cluster.run_load_check()?;
    println!(
        "load check: {} splits, {} merges",
        report.splits.len(),
        report.merges.len()
    );
    for s in &report.splits {
        println!(
            "  split {} on {} (right child -> {})",
            s.group, s.server, s.right_child_server
        );
    }

    // The active groups still partition the key space...
    assert!(cluster.global_cover().is_partition());
    let (dmin, davg, dmax) = cluster.depth_stats().expect("groups exist");
    println!("depth after splitting: min {dmin} avg {davg:.2} max {dmax}");

    // ...and every lookup lands on the true owner, in few probes.
    let key = Key::parse("10001101", 8)?;
    let placement = cluster.locate(key)?;
    let (oracle_server, oracle_group) = cluster.oracle_locate(key).expect("covered");
    assert_eq!(placement.server, oracle_server);
    assert_eq!(placement.group, oracle_group);
    println!(
        "locate({key}) -> server {} group {} depth {} in {} probes",
        placement.server, placement.group, placement.depth, placement.probes
    );

    // Cool down: detach everything; consolidation merges groups back.
    for i in 0..120u64 {
        cluster.detach_source(i)?;
    }
    for _ in 0..6 {
        cluster.run_load_check()?;
    }
    let (_, _, dmax) = cluster.depth_stats().expect("groups exist");
    println!("after cooling, max depth is back to {dmax}");
    let stats = cluster.message_stats();
    println!(
        "protocol cost: {} probes, {} split msgs, {} merge msgs, {} reports",
        stats.probes, stats.split_messages, stats.merge_messages, stats.report_messages
    );
    Ok(())
}
