//! The computing-utility story of §1: one shared server pool hosting two
//! tenant applications whose demand peaks at different times.
//!
//! A utility provider runs a fleet of peer servers. Tenant FLEET (vehicle
//! telematics) peaks during the day; tenant CHAT (corporate messaging)
//! peaks in the evening. Each tenant owns half of the key space (their
//! topmost key bit). CLASH grows and shrinks each tenant's server
//! footprint on demand, so the shared pool stays far smaller than the sum
//! of per-tenant peak provisioning — the §1 argument against
//! peak-provisioning.
//!
//! Run with: `cargo run --release --example utility_provider`

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_keyspace::key::Key;
use clash_simkernel::rng::DetRng;

const FLEET: u64 = 0; // keys 0.......
const CHAT: u64 = 1; // keys 1.......

fn tenant_key(tenant: u64, rng: &mut DetRng) -> Key {
    // Tenant bit on top, activity clustered in a few sub-regions.
    let region = rng.uniform_u64(4) << 4;
    let detail = rng.uniform_u64(16);
    Key::from_bits_truncated(
        (tenant << 7) | region | detail,
        8.try_into().expect("8 is valid"),
    )
}

fn tenant_servers(cluster: &ClashCluster, tenant: u64) -> usize {
    cluster
        .server_ids()
        .into_iter()
        .filter(|&id| {
            cluster.server(id).is_some_and(|s| {
                s.table().active_groups().any(|e| {
                    e.group.pattern() >> (e.group.depth().max(1) - 1) == tenant
                        && e.load.data_rate > 0.5
                })
            })
        })
        .count()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClashConfig {
        initial_depth: 1, // one root group per tenant
        capacity: 80.0,
        ..ClashConfig::small_test()
    };
    let mut cluster = ClashCluster::new(config, 24, 11)?;
    let mut rng = DetRng::new(1);

    // Daytime: FLEET streams hard (120 × 3 pkt/s), CHAT idles (20 × 0.25).
    let mut id = 0u64;
    let mut fleet_ids = Vec::new();
    let mut chat_ids = Vec::new();
    for _ in 0..120 {
        cluster.attach_source(id, tenant_key(FLEET, &mut rng), 3.0)?;
        fleet_ids.push(id);
        id += 1;
    }
    for _ in 0..20 {
        cluster.attach_source(id, tenant_key(CHAT, &mut rng), 0.25)?;
        chat_ids.push(id);
        id += 1;
    }
    for _ in 0..4 {
        cluster.run_load_check()?;
    }
    let day = (
        tenant_servers(&cluster, FLEET),
        tenant_servers(&cluster, CHAT),
    );
    println!(
        "daytime:  FLEET on {} servers, CHAT on {} servers",
        day.0, day.1
    );

    // Evening: FLEET parks (rates drop), CHAT lights up.
    for &sid in &fleet_ids {
        cluster.move_source_with_rate(sid, tenant_key(FLEET, &mut rng), Some(0.1))?;
    }
    for &sid in &chat_ids {
        cluster.move_source_with_rate(sid, tenant_key(CHAT, &mut rng), Some(4.0))?;
    }
    for _ in 0..80 {
        cluster.attach_source(id, tenant_key(CHAT, &mut rng), 4.0)?;
        chat_ids.push(id);
        id += 1;
    }
    for _ in 0..6 {
        cluster.run_load_check()?;
    }
    let evening = (
        tenant_servers(&cluster, FLEET),
        tenant_servers(&cluster, CHAT),
    );
    println!(
        "evening:  FLEET on {} servers, CHAT on {} servers",
        evening.0, evening.1
    );

    assert!(
        evening.1 > day.1,
        "CHAT must scale out in the evening ({} -> {})",
        day.1,
        evening.1
    );
    assert!(cluster.global_cover().is_partition());

    // The provider's pitch: peak-of-sums vs sum-of-peaks.
    let shared_peak = (day.0 + day.1).max(evening.0 + evening.1);
    let dedicated = day.0.max(evening.0) + day.1.max(evening.1);
    println!(
        "shared pool peak {shared_peak} servers vs {dedicated} under per-tenant peak \
         provisioning"
    );
    assert!(
        shared_peak <= dedicated,
        "the shared pool must never need more than dedicated provisioning"
    );
    println!(
        "lookup cost stays flat: {} total probes over {} locates",
        cluster.message_stats().probes,
        cluster.message_stats().locates
    );
    Ok(())
}
