//! Minimal stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! tiny, self-contained implementation instead of the real crate. It provides:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64, matching the
//!   real `SmallRng`'s design goals (fast, non-cryptographic, deterministic
//!   from a 64-bit seed),
//! * `gen::<u64/u32/f64/bool/…>()`, `gen_range(..)` over integer and float
//!   ranges, and `gen_bool(p)`.
//!
//! It is **not** cryptographically secure and makes no attempt to reproduce
//! the real crate's value streams — only its API and statistical quality.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! let x: f64 = a.gen();
//! assert!((0.0..1.0).contains(&x));
//! assert!(a.gen_range(0u64..10) < 10);
//! ```

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample (the `SampleRange` of the real
/// crate, reduced to `Range` / `RangeInclusive` over primitives).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[low, high)` via Lemire's widening-multiply method
/// (unbiased in practice for simulation purposes; bias < 2^-64 per draw).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, low: u64, high: u64) -> u64 {
    assert!(low < high, "cannot sample empty range");
    let span = high - low;
    let mult = (rng.next_u64() as u128).wrapping_mul(span as u128);
    low + (mult >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                uniform_u64(rng, self.start as u64, self.end as u64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                lo + uniform_u64(rng, 0, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard (uniform) distribution.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ with
    /// SplitMix64 seed expansion (the same construction the real `SmallRng`
    /// uses on 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_from_seed() {
            let mut a = SmallRng::seed_from_u64(1);
            let mut b = SmallRng::seed_from_u64(1);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn distinct_seeds_distinct_streams() {
            let mut a = SmallRng::seed_from_u64(1);
            let mut b = SmallRng::seed_from_u64(2);
            assert_ne!(
                (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
                (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
            );
        }

        #[test]
        fn gen_range_bounds() {
            let mut r = SmallRng::seed_from_u64(3);
            for _ in 0..10_000 {
                assert!(r.gen_range(10u64..20) < 20);
                assert!(r.gen_range(10u64..20) >= 10);
                let x = r.gen_range(0usize..7);
                assert!(x < 7);
                let f = r.gen_range(-1.0f64..1.0);
                assert!((-1.0..1.0).contains(&f));
            }
        }

        #[test]
        fn gen_bool_calibrated() {
            let mut r = SmallRng::seed_from_u64(4);
            let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
            let p = hits as f64 / 100_000.0;
            assert!((p - 0.3).abs() < 0.01, "p={p}");
        }

        #[test]
        fn inclusive_range_hits_endpoints() {
            let mut r = SmallRng::seed_from_u64(5);
            let mut seen = [false; 3];
            for _ in 0..1000 {
                seen[r.gen_range(0usize..=2)] = true;
            }
            assert_eq!(seen, [true; 3]);
        }

        #[test]
        fn f64_standard_in_unit_interval() {
            let mut r = SmallRng::seed_from_u64(6);
            for _ in 0..10_000 {
                let x: f64 = r.gen();
                assert!((0.0..1.0).contains(&x));
            }
        }
    }
}
