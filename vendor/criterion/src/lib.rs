//! Minimal stand-in for the subset of the `criterion` 0.5 API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small benchmark harness with the same surface syntax: [`Criterion`],
//! [`criterion_group!`], [`criterion_main!`], benchmark groups,
//! `iter`/`iter_batched`, [`BenchmarkId`], [`BatchSize`], and [`black_box`].
//!
//! It performs a real (if statistically unsophisticated) measurement: after a
//! short warm-up it times batches of iterations with `std::time::Instant` and
//! reports the per-iteration mean and min. There is no outlier analysis, no
//! plotting, and no saved baselines.
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default();
//! c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(40)));
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; the stub only uses it to pick a
/// batch length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// Parameter-only id (the group provides the function name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Mean/min per-iteration time of the last measurement, for reporting.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            result: None,
        }
    }

    /// Times `routine` over several batches of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: target ~2ms per sample batch.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut mean_sum = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let per_iter = start.elapsed() / per_batch as u32;
            mean_sum += per_iter;
            min = min.min(per_iter);
        }
        self.result = Some((mean_sum / self.samples as u32, min));
    }

    /// Times `routine` on fresh inputs produced by `setup`; only `routine`
    /// is timed.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut mean_sum = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            mean_sum += elapsed;
            min = min.min(elapsed);
        }
        self.result = Some((mean_sum / self.samples as u32, min));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn run_one(full_id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(samples.max(1));
    f(&mut bencher);
    match bencher.result {
        Some((mean, min)) => println!(
            "{full_id:<50} mean {:>12}   min {:>12}",
            fmt_duration(mean),
            fmt_duration(min)
        ),
        None => println!("{full_id:<50} (no measurement)"),
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().to_string(), self.samples, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into()),
            self.samples,
            &mut f,
        );
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (reporting is immediate in this stub; provided for
    /// API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
