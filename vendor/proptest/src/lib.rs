//! Minimal stand-in for the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small property-testing engine with the same surface syntax:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, [`strategy::Just`],
//!   integer/float range strategies, tuple strategies,
//! * [`collection::vec`] and [`arbitrary::any`].
//!
//! Differences from the real crate: cases are generated from a seed derived
//! from the test name (fully deterministic across runs), and **failing cases
//! are not shrunk** — the failing input is reported as-is. The
//! `PROPTEST_CASES` environment variable overrides the default case count,
//! like the real crate.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // (`#[test]` goes here in a real test module; omitted so this
//!     // doctest can call the function directly.)
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() { addition_commutes(); }
//! ```

pub mod test_runner {
    //! Configuration and the per-test deterministic RNG.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Subset of proptest's run configuration: the number of cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 256 cases, like the real crate; `PROPTEST_CASES` overrides.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` precondition was not met; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Constructs a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Deterministic source of randomness for strategy generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// A generator seeded from a label (the test function name), so each
        /// test sees the same cases on every run.
        pub fn deterministic(label: &str) -> Self {
            let mut seed = 0xC1A5_11D0_2004_ED05u64;
            for &b in label.as_bytes() {
                seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(seed),
            }
        }

        /// Mutable access to the underlying RNG.
        pub fn rng(&mut self) -> &mut SmallRng {
            &mut self.inner
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;

    /// A recipe for generating values of an associated type.
    ///
    /// Unlike the real crate there is no value tree and no shrinking: a
    /// strategy simply produces a value from the test RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values for which `f` is false, retrying.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
        }
    }

    /// See [`Strategy::boxed`].
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($(ref $s,)+) = *self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::Rng;

    /// Primitives with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.rng().gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, bool, f64);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T` (full domain for primitives).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use rand::Rng;

    /// A range of collection sizes (mirrors proptest's `SizeRange`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len)` / `vec(element, lo..hi)` — a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prop {
    //! The `prop::` namespace re-exported by the prelude.

    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property test module needs.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: `fn name(arg in strategy, ...) { body }`.
///
/// Each test body runs once per generated case inside a closure returning
/// `Result<(), TestCaseError>`; the `prop_assert*` macros early-return a
/// failure, `prop_assume!` early-returns a rejection (the case is skipped).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut __case: u32 = 0;
            let mut __attempts: u32 = 0;
            while __case < __config.cases {
                __attempts += 1;
                if __attempts > __config.cases.saturating_mul(20).max(1000) {
                    panic!(
                        "proptest {}: too many rejected cases ({} attempts for {} cases)",
                        stringify!($name), __attempts, __config.cases
                    );
                }
                let __outcome = {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                };
                match __outcome {
                    ::core::result::Result::Ok(()) => __case += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), __case, __msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{} (both: `{:?}`)",
            format!($($fmt)+), __l
        );
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
