//! Differential pins for the ring-arc sharded locate path
//! (PR: sharded parallel simulation).
//!
//! `ClashConfig::shards = n` batches client locates per key-space arc:
//! ops are *planned* synchronously (every RNG draw and ledger mutation
//! in op order), their DHT routing resolves against a frozen snapshot —
//! on worker threads when `n > 1` — and the results are charged through
//! a deterministic merge queue at the next barrier. The invariant is
//! absolute: **zero protocol-behavior change** — same seed ⇒ identical
//! `RunResult`, bit for bit, for every shard count including the
//! sequential `shards = 0`, at any replication factor, with or without
//! churn and crash bursts, on any thread schedule.
//!
//! `RunResult::deterministic_fingerprint()` digests every deterministic
//! field (samples, phases, message stats, action and recovery totals);
//! comparing fingerprints makes a divergence print both full states.

use clash_core::config::ClashConfig;
use clash_sim::driver::{RunResult, SimDriver};
use clash_simkernel::time::SimDuration;
use clash_transport::{LinkPolicy, LinkTransport, Transport};
use clash_workload::churn::ChurnSpec;
use clash_workload::scenario::ScenarioSpec;

/// The Figure-4-style pin scenario: three workload phases, no churn.
fn pin_spec() -> ScenarioSpec {
    ScenarioSpec {
        servers: 16,
        sources: 300,
        query_clients: 20,
        load_check_period: SimDuration::from_secs(60),
        sample_period: SimDuration::from_secs(60),
        ..ScenarioSpec::paper().with_phase_duration(SimDuration::from_mins(5))
    }
}

/// Sustained joins/drains plus single crashes: every membership event
/// is a flush barrier interleaving with open batch windows.
fn churn_spec() -> ScenarioSpec {
    pin_spec().with_churn(
        ChurnSpec::sustained(SimDuration::from_mins(2), SimDuration::from_mins(3), 8, 64)
            .with_crashes(SimDuration::from_mins(4)),
    )
}

/// Correlated crash bursts layered on the churn: simultaneous
/// multi-server failures hit the batched path's snapshot invalidation
/// and the replication recovery machinery at once.
fn burst_spec() -> ScenarioSpec {
    pin_spec().with_churn(
        ChurnSpec::sustained(SimDuration::from_mins(2), SimDuration::from_mins(3), 8, 64)
            .with_crash_bursts(SimDuration::from_mins(6), 3),
    )
}

/// A flash crowd: a rapid join ramp mid-run. Every joining server lands
/// on some arc and immediately participates in split placement and
/// replica sweeps — the membership pattern most likely to expose a
/// shard-count dependence in the arc-sharded candidate sets.
fn flash_spec() -> ScenarioSpec {
    pin_spec().with_churn(ChurnSpec::flash_crowd(
        SimDuration::from_mins(3),
        24,
        SimDuration::from_secs(10),
    ))
}

fn run(spec: ScenarioSpec, replication: usize, shards: u32) -> RunResult {
    let config = ClashConfig {
        capacity: 60.0,
        ..ClashConfig::paper()
    }
    .with_replication(replication)
    .with_shards(shards);
    let transport: Box<dyn Transport> = Box::new(LinkTransport::new(LinkPolicy::wan(), spec.seed));
    let (result, cluster) =
        SimDriver::with_transport(config, spec, "CLASH/shard-equiv".to_owned(), transport)
            .unwrap()
            .run_with_cluster()
            .unwrap();
    cluster.verify_consistency();
    result
}

fn assert_equal_runs(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(
        a.final_messages, b.final_messages,
        "{label}: MessageStats diverged between shard counts"
    );
    assert_eq!(a.samples, b.samples, "{label}: sampled series diverged");
    assert_eq!(a.events, b.events, "{label}: event counts diverged");
    assert_eq!(
        (a.splits, a.merges, a.joins, a.leaves, a.crashes),
        (b.splits, b.merges, b.joins, b.leaves, b.crashes),
        "{label}: action totals diverged"
    );
    assert_eq!(a.recovery, b.recovery, "{label}: recovery totals diverged");
    assert_eq!(
        a.load_checks, b.load_checks,
        "{label}: check counts diverged"
    );
    assert_eq!(
        a.deterministic_fingerprint(),
        b.deterministic_fingerprint(),
        "{label}: deterministic fingerprints diverged"
    );
}

/// The headline pin: with N = 1 the batched plan/route/merge-charge
/// path must reproduce the sequential run *bit for bit* — Figure-4,
/// churn and crash-burst scenarios, r = 0 and r = 2, three seeds each.
#[test]
fn single_shard_batching_matches_sequential_bit_for_bit() {
    type SpecFn = fn() -> ScenarioSpec;
    let scenarios: [(&str, SpecFn); 3] = [
        ("fig4", pin_spec),
        ("churn", churn_spec),
        ("burst", burst_spec),
    ];
    for (name, make_spec) in scenarios {
        for replication in [0usize, 2] {
            for seed in [1u64, 42, 0xBEEF] {
                let mut spec = make_spec();
                spec.seed = seed;
                let sequential = run(spec.clone(), replication, 0);
                let sharded = run(spec, replication, 1);
                assert_equal_runs(
                    &sequential,
                    &sharded,
                    &format!("{name} r={replication} seed={seed}"),
                );
            }
        }
    }
}

/// Real multi-shard runs (worker threads live): N ∈ {2, 4, 8} must all
/// produce the same `RunResult` as each other *and* as the sequential
/// run — determinism across thread counts, not merely across repeats.
/// Pinned on the two nastiest membership patterns (crash bursts and a
/// flash-crowd join ramp) at r ∈ {0, 2}.
#[test]
fn shard_counts_two_four_eight_agree() {
    type SpecFn = fn() -> ScenarioSpec;
    let scenarios: [(&str, SpecFn); 2] = [("burst", burst_spec), ("flash", flash_spec)];
    for (name, make_spec) in scenarios {
        for replication in [0usize, 2] {
            let baseline = run(make_spec(), replication, 0);
            for shards in [2u32, 4, 8] {
                let sharded = run(make_spec(), replication, shards);
                assert_equal_runs(
                    &baseline,
                    &sharded,
                    &format!("{name} r={replication} shards={shards}"),
                );
            }
            if name == "burst" {
                assert!(baseline.crashes > 0, "burst scenario must crash servers");
            } else {
                assert!(baseline.joins >= 24, "flash crowd must join its servers");
            }
        }
    }
}

/// Repeated multi-shard runs are self-identical: the thread schedule of
/// one run never leaks into the result (the per-flush substream shuffle
/// deliberately adversarializes the shard-local order, so any
/// order-dependence would show up here as flakiness).
#[test]
fn multi_shard_runs_are_self_deterministic() {
    let a = run(churn_spec(), 2, 4);
    let b = run(churn_spec(), 2, 4);
    assert_equal_runs(&a, &b, "repeat shards=4");
}

/// The CI matrix leg: `CLASH_SHARDS` (1 and 4 in CI) selects the shard
/// count, and the run must match the sequential baseline exactly.
#[test]
fn env_selected_shards_match_sequential() {
    let shards = ClashConfig::shards_from_env();
    let sequential = run(churn_spec(), 2, 0);
    let sharded = run(churn_spec(), 2, shards);
    assert_equal_runs(&sequential, &sharded, &format!("CLASH_SHARDS={shards}"));
}
