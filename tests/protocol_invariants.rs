//! Long random-walk stress over the cluster protocol: after every batch
//! of arbitrary operations, the global invariants of §4–5 must hold.

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_core::messages::AcceptObjectResponse;
use clash_keyspace::key::Key;
use clash_simkernel::rng::DetRng;

fn key(bits: u64) -> Key {
    Key::from_bits_truncated(bits, ClashConfig::small_test().key_width)
}

#[test]
fn random_walk_preserves_all_invariants() {
    let mut cluster = ClashCluster::new(ClashConfig::small_test(), 12, 3).unwrap();
    let mut rng = DetRng::new(1234);
    let mut live_sources: Vec<u64> = Vec::new();
    let mut live_queries: Vec<u64> = Vec::new();
    let mut next_id = 0u64;

    for step in 0..2000u32 {
        match rng.uniform_u64(10) {
            // Attach a source (weighted toward hot region to force splits).
            0..=3 => {
                let bits = if rng.chance(0.7) {
                    0b1100_0000 | rng.uniform_u64(64)
                } else {
                    rng.uniform_u64(256)
                };
                cluster.attach_source(next_id, key(bits), 2.0).unwrap();
                live_sources.push(next_id);
                next_id += 1;
            }
            // Detach a source.
            4..=5 => {
                if !live_sources.is_empty() {
                    let idx = rng.uniform_index(live_sources.len());
                    let id = live_sources.swap_remove(idx);
                    cluster.detach_source(id).unwrap();
                }
            }
            // Move a source.
            6 => {
                if !live_sources.is_empty() {
                    let idx = rng.uniform_index(live_sources.len());
                    let id = live_sources[idx];
                    cluster.move_source(id, key(rng.uniform_u64(256))).unwrap();
                }
            }
            // Query churn.
            7 => {
                cluster
                    .attach_query(next_id, key(rng.uniform_u64(256)))
                    .unwrap();
                live_queries.push(next_id);
                next_id += 1;
            }
            8 => {
                if !live_queries.is_empty() {
                    let idx = rng.uniform_index(live_queries.len());
                    let id = live_queries.swap_remove(idx);
                    cluster.detach_query(id).unwrap();
                }
            }
            // Load check (splits + merges).
            _ => {
                cluster.run_load_check().unwrap();
            }
        }
        if step % 100 == 0 {
            cluster.verify_consistency();
            assert!(cluster.global_cover().is_partition());
        }
    }
    cluster.verify_consistency();

    // Final: every possible key locates to the oracle owner.
    for bits in 0..256u64 {
        let k = key(bits);
        let placement = cluster.locate(k).unwrap();
        let (oracle_server, oracle_group) = cluster.oracle_locate(k).unwrap();
        assert_eq!(placement.server, oracle_server, "key {k}");
        assert_eq!(placement.group, oracle_group, "key {k}");
    }
}

#[test]
fn every_server_respects_dmin_soundness_after_stress() {
    let mut cluster = ClashCluster::new(ClashConfig::small_test(), 10, 8).unwrap();
    let mut rng = DetRng::new(5678);
    for i in 0..150u64 {
        let bits = 0b0100_0000 | rng.uniform_u64(64);
        cluster.attach_source(i, key(bits), 2.5).unwrap();
    }
    for _ in 0..5 {
        cluster.run_load_check().unwrap();
    }
    // The d_min theorem, checked exhaustively over keys × servers.
    for bits in 0..256u64 {
        let k = key(bits);
        let (_, group) = cluster.oracle_locate(k).unwrap();
        let d_c = group.depth();
        for id in cluster.server_ids() {
            let resp = cluster.server(id).unwrap().table().classify_object(k, 4);
            match resp {
                AcceptObjectResponse::Ok { depth }
                | AcceptObjectResponse::OkCorrected { depth } => {
                    assert_eq!(depth, d_c, "owner must report the true depth");
                }
                AcceptObjectResponse::IncorrectDepth { d_min: Some(m) } => {
                    assert!(m < d_c, "d_min {m} must undershoot true depth {d_c}");
                }
                AcceptObjectResponse::IncorrectDepth { d_min: None } => {
                    assert_eq!(cluster.server(id).unwrap().table().len(), 0);
                }
            }
        }
    }
}

#[test]
fn probe_counts_stay_logarithmic_under_deep_trees() {
    let mut cluster = ClashCluster::new(
        ClashConfig {
            capacity: 50.0,
            ..ClashConfig::small_test()
        },
        16,
        21,
    )
    .unwrap();
    let mut rng = DetRng::new(99);
    for i in 0..200u64 {
        cluster
            .attach_source(i, key(0b1110_0000 | rng.uniform_u64(32)), 2.0)
            .unwrap();
    }
    for _ in 0..6 {
        cluster.run_load_check().unwrap();
    }
    let (_, _, max_depth) = cluster.depth_stats().unwrap();
    assert!(max_depth >= 7, "tree should be deep, got {max_depth}");
    // N = 8 → binary search bound ⌈log2(9)⌉ + 1 = 5.
    for bits in 0..256u64 {
        let placement = cluster.locate(key(bits)).unwrap();
        assert!(
            placement.probes <= 5,
            "key {bits:#b} took {} probes",
            placement.probes
        );
    }
}
