//! Fault matrix for successor-list replication (PR: real crash recovery
//! without the oracle).
//!
//! Three adversarial corners beyond the happy path the unit and property
//! tests cover:
//!
//! 1. **Crash while partitioned** — every live replica of the victim's
//!    groups sits on the unreachable side: recovery *defers* (the groups
//!    leave the active cover) and completes at the first load check after
//!    healing, with 100% oracle agreement pinned afterwards.
//! 2. **Crash of the owner and every replica holder at once** — the
//!    state is genuinely lost: the `FailureReport` must say so truthfully
//!    (groups/sources/queries lost) instead of silently re-rooting
//!    populated groups from the oracle.
//! 3. **Crash immediately after a split** — the retired parent group's
//!    replica was invalidated at split time and must not be promoted;
//!    only the children come back.
//!
//! Plus the `range_query`-under-churn coverage gap: after a join, a
//! crash and a partition heal, `range_query` must still walk exactly the
//! oracle's cover.

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_core::ServerId;
use clash_keyspace::key::Key;
use clash_keyspace::prefix::Prefix;
use clash_transport::{LinkPolicy, LinkTransport};

fn key(bits: u64) -> Key {
    Key::from_bits_truncated(bits, ClashConfig::small_test().key_width)
}

/// An 8-server cluster over a LAN link transport with replication `r`,
/// heated so every server owns load-bearing groups.
fn lan_cluster(r: usize, seed: u64) -> ClashCluster {
    let config = ClashConfig::small_test().with_replication(r);
    let transport = Box::new(LinkTransport::new(LinkPolicy::lan(), seed));
    let mut c = ClashCluster::with_transport(config, 8, seed, transport).unwrap();
    for i in 0..96 {
        c.attach_source(i, key((i * 7) % 256), 1.5).unwrap();
    }
    c.run_load_check().unwrap();
    c.verify_consistency();
    c
}

/// Sweeps every key against the oracle; panics on the first divergence.
fn assert_full_oracle_agreement(c: &mut ClashCluster) {
    for bits in 0..256u64 {
        let k = key(bits);
        let placement = c.locate(k).unwrap();
        let (oracle_server, oracle_group) = c.oracle_locate(k).unwrap();
        assert_eq!(placement.server, oracle_server, "key {k}");
        assert_eq!(placement.group, oracle_group, "key {k}");
    }
}

/// Scenario 1: the victim's only replicas end up reachable solely from
/// the wrong side of a partition, so recovery must defer and then
/// complete after healing.
///
/// Construction (r = 1): the victim V's single replica of each group
/// lives on V's first successor S. A new server J with an id wedged
/// between V and S joins *while V's island is severed*: J becomes V's
/// first successor — and the new `Map()` owner of V's groups once V
/// dies — but the seed V → J cannot cross the partition, so the old
/// copies on S are retained (never invalidate the last replica). V then
/// crashes: the new owner J can reach no replica (S is on the other
/// island), recovery defers, and the healed cluster promotes at the next
/// load check.
#[test]
fn crash_while_partitioned_defers_and_heals_to_full_agreement() {
    let mut c = lan_cluster(1, 11);
    // Pick a victim that owns active groups and has a successor gap we
    // can wedge a joiner into.
    let (victim, join_id) = c
        .server_ids()
        .into_iter()
        .find_map(|id| {
            let owns = c.server(id).unwrap().table().active_count() > 0;
            let succ = c.net().alive_successors(id, 1);
            let gap = succ.first().is_some_and(|s| {
                s.value().wrapping_sub(id.value()) & c.config().hash_space.mask() > 1
            });
            (owns && gap).then(|| (id, ServerId::new(id.value() + 1, c.config().hash_space)))
        })
        .expect("some owner has a successor gap");
    let victim_groups: Vec<Prefix> = c
        .server(victim)
        .unwrap()
        .table()
        .active_groups()
        .map(|e| e.group)
        .collect();
    let sources_before = c.source_count();
    let old_holder = c.net().alive_successors(victim, 1)[0];

    // Sever {victim, old replica holder} from the rest; the joiner's id
    // is pre-listed on the *other* island, so the join-time re-seed
    // V → J is undeliverable (the old copies on the holder are retained)
    // and, after the crash, the new owner J cannot reach the holder.
    let others: Vec<ServerId> = c
        .server_ids()
        .into_iter()
        .filter(|&id| id != victim && id != old_holder)
        .chain(std::iter::once(join_id))
        .collect();
    c.partition_network(&[vec![victim, old_holder], others]);
    c.join_server(join_id).unwrap();
    c.verify_consistency();

    // Crash the victim: its replicas survive on the old successor, which
    // the new owner (the joiner) cannot reach — recovery defers.
    let report = c.fail_server(victim).unwrap();
    assert!(
        report.groups_deferred > 0,
        "unreachable replicas must defer recovery: {report:?}"
    );
    assert_eq!(report.groups_lost, 0, "nothing is lost, only deferred");
    assert_eq!(report.sources_lost, 0);
    assert_eq!(c.pending_recoveries(), report.groups_deferred);
    assert_eq!(c.recovery_oracle_reads(), 0);
    c.verify_consistency();

    // While deferred, the groups are out of the cover: lookups into them
    // fail (diverged search or severed route), but nothing panics and
    // load checks keep running without completing the recovery.
    let probe = victim_groups[0].min_key();
    assert!(
        c.locate(probe).is_err(),
        "a deferred group's keys must not resolve"
    );
    assert_eq!(c.recovery_retry_counters(), (0, 0), "no load check yet");
    c.run_load_check().unwrap();
    assert_eq!(c.pending_recoveries(), report.groups_deferred);
    c.verify_consistency();
    // The blocked retry is counted, not silent: one attempt per deferred
    // group, all of them blocked.
    let deferred = report.groups_deferred as u64;
    assert_eq!(c.recovery_retry_counters(), (deferred, deferred));

    // Heal: the next load check promotes every deferred group, and the
    // whole key space agrees with the oracle again — pinned at 100%.
    c.heal_partition();
    let check = c.run_load_check().unwrap();
    assert_eq!(check.recoveries_completed, report.groups_deferred as u64);
    assert_eq!(check.recoveries_lost, 0);
    assert_eq!(c.pending_recoveries(), 0);
    assert_eq!(c.recovery_oracle_reads(), 0);
    // Retry conservation: every retry attempt landed in exactly one of
    // blocked / completed / lost, and the counters surface in telemetry.
    let (retries, blocked) = c.recovery_retry_counters();
    assert_eq!(
        retries,
        blocked + check.recoveries_completed + check.recoveries_lost,
        "retry conservation"
    );
    assert_eq!((retries, blocked), (2 * deferred, deferred));
    let t = c.telemetry();
    assert_eq!(t.counter_value("recovery.retries"), Some(retries));
    assert_eq!(t.counter_value("recovery.retries_blocked"), Some(blocked));
    assert_eq!(
        t.counter_value("recovery.deferred_max_wait_checks"),
        Some(1),
        "each entry waited exactly one blocked check"
    );
    c.verify_consistency();
    assert!(c.global_cover().is_partition());
    assert_eq!(c.source_count(), sources_before, "no client was lost");
    assert_full_oracle_agreement(&mut c);
}

/// Regression: a partition must never cost a group its last replica.
/// With r = 1 and the owner isolated alone, a ledger write during the
/// partition prunes the unreachable holder from the owner's registry
/// (write-through honesty) — but the holder must *keep* its copy: lease
/// expiry only triggers on owner death, never on mere deregistration.
/// A crash of the isolated owner then still recovers from that copy.
#[test]
fn partition_starved_write_through_never_expires_the_last_replica() {
    let mut c = lan_cluster(1, 11);
    let victim = c
        .server_ids()
        .into_iter()
        .find(|&id| c.server(id).unwrap().table().active_count() > 0)
        .unwrap();
    let victim_source = c
        .server(victim)
        .unwrap()
        .table()
        .active_groups()
        .find_map(|e| (e.load.data_rate > 0.0).then_some(e.group))
        .and_then(|g| (0..96).find(|&s| c.oracle_locate(key((s * 7) % 256)).unwrap().1 == g))
        .expect("the victim owns a populated group");

    // Isolate the owner alone; every replica holder is on the far side.
    let others: Vec<ServerId> = c
        .server_ids()
        .into_iter()
        .filter(|&id| id != victim)
        .collect();
    c.partition_network(&[vec![victim], others]);

    // A ledger write during the partition: the write-through cannot reach
    // the holder, which falls off the registry. A load check runs the
    // lease sweep. The holder's copy must survive both.
    c.detach_source(victim_source).unwrap();
    c.run_load_check().unwrap();

    // Crash the isolated owner: the surviving copy (reconciled against
    // the client registry, so the detached source stays detached) is
    // promoted — nothing is lost.
    let report = c.fail_server(victim).unwrap();
    assert_eq!(
        report.groups_lost, 0,
        "the last replica was expired during the partition: {report:?}"
    );
    assert_eq!(c.recovery_oracle_reads(), 0);
    c.verify_consistency();
    c.heal_partition();
    c.run_load_check().unwrap();
    assert_eq!(c.pending_recoveries(), 0);
    c.verify_consistency();
    assert_eq!(c.source_count(), 95);
    assert_full_oracle_agreement(&mut c);
}

/// Scenario 2: owner and *all* replica holders die in one correlated
/// burst. The groups are genuinely gone — the report must say so, the
/// stranded clients must be dropped, and the re-rooted groups must be
/// empty rather than silently resurrected from the oracle.
#[test]
fn owner_plus_all_replicas_lost_is_reported_truthfully() {
    let mut c = lan_cluster(2, 5);
    // Kill an owner together with both of its replica holders.
    let owner = c
        .server_ids()
        .into_iter()
        .find(|&id| c.server(id).unwrap().table().active_count() > 0)
        .unwrap();
    let owned: Vec<Prefix> = c
        .server(owner)
        .unwrap()
        .table()
        .active_groups()
        .map(|e| e.group)
        .collect();
    let mut victims = vec![owner];
    victims.extend(c.net().alive_successors(owner, 2));
    assert_eq!(victims.len(), 3, "r = 2 places two holders");
    let sources_before = c.source_count();
    let queries_before = c.query_count();

    let report = c.fail_servers(&victims).unwrap();
    assert_eq!(report.servers_failed, 3);
    assert!(
        report.groups_lost >= owned.len(),
        "the owner's groups had no surviving replica: {report:?}"
    );
    assert_eq!(report.groups_deferred, 0);
    assert_eq!(c.recovery_oracle_reads(), 0);
    // Truthful loss accounting: the stranded clients are gone...
    assert_eq!(c.source_count(), sources_before - report.sources_lost);
    assert_eq!(c.query_count(), queries_before - report.queries_lost);
    // ...and the re-rooted groups are empty, not resurrected.
    for g in &owned {
        let (new_owner, _) = c.oracle_locate(g.min_key()).unwrap();
        let entry = c.server(new_owner).unwrap().table().entry(*g);
        if let Some(entry) = entry {
            assert_eq!(
                entry.load.data_rate, 0.0,
                "lost group {g} must come back empty"
            );
        }
    }
    c.verify_consistency();
    assert!(c.global_cover().is_partition());
    assert_full_oracle_agreement(&mut c);
    // The system keeps adapting afterwards.
    c.run_load_check().unwrap();
    c.verify_consistency();
}

/// Scenario 3: crash immediately after a split. The retired parent's
/// replicas were invalidated at split time, so recovery promotes only
/// the children — a stale parent must never shadow them.
#[test]
fn crash_immediately_after_split_promotes_children_not_stale_parent() {
    let config = ClashConfig {
        capacity: 60.0,
        ..ClashConfig::small_test().with_replication(2)
    };
    let transport = Box::new(LinkTransport::new(LinkPolicy::lan(), 9));
    let mut c = ClashCluster::with_transport(config, 8, 9, transport).unwrap();
    // Heat one quadrant hard so the owner splits.
    for i in 0..80 {
        c.attach_source(i, key(0b0100_0000 | (i % 64)), 2.0)
            .unwrap();
    }
    let check = c.run_load_check().unwrap();
    assert!(!check.splits.is_empty(), "the hot quadrant must split");
    let split = check.splits[0];
    let parent = split.group;
    // No replica of the retired parent survives anywhere.
    for id in c.server_ids() {
        assert!(
            c.server(id).unwrap().replica_store().held(parent).is_none(),
            "stale parent replica on {id}"
        );
    }
    // Crash the splitting server right away — no further load check.
    let report = c.fail_server(split.server).unwrap();
    assert_eq!(report.groups_lost, 0);
    assert_eq!(report.groups_deferred, 0);
    assert_eq!(c.recovery_oracle_reads(), 0);
    c.verify_consistency();
    // The parent is not active anywhere; its keys resolve to the
    // recovered children (strictly deeper groups).
    for bits in 0..256u64 {
        let k = key(bits);
        let (_, group) = c.oracle_locate(k).unwrap();
        assert_ne!(group, parent, "stale parent was promoted");
    }
    assert_full_oracle_agreement(&mut c);
}

/// Coverage gap: `range_query` under churn and crashes. After a join, a
/// partitioned crash and a heal, the distributed walk must match
/// `oracle_range` exactly on hot and cold ranges alike.
#[test]
fn range_query_matches_oracle_after_join_crash_heal() {
    let mut c = lan_cluster(2, 21);
    c.join_random_server().unwrap();
    c.verify_consistency();

    // Partition the fleet, crash a server mid-partition (its recovery
    // may promote directly or defer), then heal and let a load check
    // settle everything.
    let ids = c.server_ids();
    let (left, right) = ids.split_at(ids.len() / 2);
    c.partition_network(&[left.to_vec(), right.to_vec()]);
    let victim = left[0];
    c.fail_server(victim).unwrap();
    c.verify_consistency();
    c.heal_partition();
    for _ in 0..2 {
        c.run_load_check().unwrap();
    }
    assert_eq!(c.pending_recoveries(), 0, "healing completes recovery");
    c.verify_consistency();

    // The §7 walk agrees with the oracle on every quadrant and on the
    // full key space.
    for pattern in ["00*", "01*", "10*", "11*"] {
        let range = Prefix::parse(pattern, 8).unwrap();
        let walked = c.range_query(range).unwrap();
        assert_eq!(walked.groups, c.oracle_range(range), "range {pattern}");
        assert!(walked.distinct_servers >= 1);
    }
    let root = Prefix::root(c.config().key_width);
    let walked = c.range_query(root).unwrap();
    assert_eq!(walked.groups, c.oracle_range(root));
    assert_eq!(c.recovery_oracle_reads(), 0);
}

/// The repo-level suites honor `CLASH_REPLICATION` (the CI matrix runs
/// them at 0 and 2); whatever the environment says, a loaded cluster
/// with that factor crashes and recovers consistently.
#[test]
fn env_selected_replication_factor_survives_a_crash() {
    let r = ClashConfig::replication_factor_from_env();
    let config = ClashConfig::small_test().with_replication(r);
    let mut c = ClashCluster::new(config, 8, 3).unwrap();
    for i in 0..60 {
        c.attach_source(i, key(i % 256), 1.5).unwrap();
    }
    c.run_load_check().unwrap();
    let victim = c
        .server_ids()
        .into_iter()
        .find(|&id| c.server(id).unwrap().table().active_count() > 0)
        .unwrap();
    let report = c.fail_server(victim).unwrap();
    assert!(report.groups_reassigned > 0);
    if r >= 1 {
        assert_eq!(report.groups_lost, 0);
        assert_eq!(c.recovery_oracle_reads(), 0);
    } else {
        assert!(c.recovery_oracle_reads() > 0, "r = 0 leans on the oracle");
    }
    c.verify_consistency();
    assert!(c.global_cover().is_partition());
    assert_eq!(c.source_count(), 60);
}

/// Cross-shard crash under ring-arc batching: the victim's replica
/// holders sit in a *different* key-space arc than the victim itself,
/// so with `shards = 2` the crash barrier flushes probes that routed
/// into one arc while the promotion pulls state from the other. The
/// sharded cluster must produce the identical `FailureReport`, message
/// accounting and post-recovery state as a sequential twin — and a
/// partitioned crash + heal afterwards (batching steps aside during the
/// partition) must land both at 100% oracle agreement.
#[test]
fn cross_shard_crash_promotes_like_sequential_and_heals() {
    let config = ClashConfig::small_test().with_replication(2);
    let mk = |shards: u32| {
        let transport = Box::new(LinkTransport::new(LinkPolicy::lan(), 11));
        let mut c =
            ClashCluster::with_transport(config.with_shards(shards), 8, 11, transport).unwrap();
        for i in 0..96 {
            c.attach_source(i, key((i * 7) % 256), 1.5).unwrap();
        }
        c.run_load_check().unwrap();
        c.verify_consistency();
        c
    };
    let mut seq = mk(0);
    let mut sharded = mk(2);

    // A victim whose first replica holder lives across the arc boundary:
    // shard(h) = ⌊h · 2 / 2^bits⌋ differs between the two ids.
    let bits = config.hash_space.bits();
    let arc_of = |id: ServerId| ((u128::from(id.value()) * 2) >> bits) as u32;
    let victim = seq
        .server_ids()
        .into_iter()
        .find(|&id| {
            seq.server(id).unwrap().table().active_count() > 0
                && seq
                    .net()
                    .alive_successors(id, 1)
                    .first()
                    .is_some_and(|&s| arc_of(s) != arc_of(id))
        })
        .expect("some loaded owner's replica holder sits in the other arc");

    let ra = seq.fail_server(victim).unwrap();
    let rb = sharded.fail_server(victim).unwrap();
    assert_eq!(ra, rb, "cross-shard failure reports diverged");
    assert_eq!(ra.groups_lost, 0, "replicas existed: nothing may be lost");
    assert_eq!(sharded.recovery_oracle_reads(), 0);
    sharded.flush_batch().unwrap();
    assert_eq!(seq.message_stats(), sharded.message_stats());
    assert_eq!(seq.server_loads(), sharded.server_loads());
    // Sweep both (the sweep itself locates, so sweeping only one would
    // un-mirror the message accounting compared below).
    assert_full_oracle_agreement(&mut seq);
    assert_full_oracle_agreement(&mut sharded);
    sharded.flush_batch().unwrap();

    // Partitioned crash + heal, mirrored on both: batching is inert
    // while partitioned, and the healed promotion must agree too.
    let ids = seq.server_ids();
    let (left, right) = ids.split_at(ids.len() / 2);
    seq.partition_network(&[left.to_vec(), right.to_vec()]);
    sharded.partition_network(&[left.to_vec(), right.to_vec()]);
    let ra = seq.fail_server(left[0]).unwrap();
    let rb = sharded.fail_server(left[0]).unwrap();
    assert_eq!(ra, rb, "partitioned failure reports diverged");
    seq.heal_partition();
    sharded.heal_partition();
    for _ in 0..2 {
        let ca = seq.run_load_check().unwrap();
        let cb = sharded.run_load_check().unwrap();
        assert_eq!(ca, cb, "post-heal load checks diverged");
    }
    assert_eq!(sharded.pending_recoveries(), 0);
    assert_eq!(sharded.recovery_oracle_reads(), 0);
    assert_eq!(seq.message_stats(), sharded.message_stats());
    assert_eq!(seq.server_loads(), sharded.server_loads());
    sharded.verify_consistency();
    assert!(sharded.global_cover().is_partition());
    assert_full_oracle_agreement(&mut sharded);
}

/// Rapid partition flapping around a deferred recovery: severing and
/// healing between (and across) load checks must never strand a
/// `pending_recovery` entry — the first check that runs on a healed
/// network drains it — and the retry counters stay conserved through
/// every flap.
#[test]
fn partition_flapping_drains_pending_recovery() {
    let mut c = lan_cluster(1, 11);
    let (victim, join_id) = c
        .server_ids()
        .into_iter()
        .find_map(|id| {
            let owns = c.server(id).unwrap().table().active_count() > 0;
            let succ = c.net().alive_successors(id, 1);
            let gap = succ.first().is_some_and(|s| {
                s.value().wrapping_sub(id.value()) & c.config().hash_space.mask() > 1
            });
            (owns && gap).then(|| (id, ServerId::new(id.value() + 1, c.config().hash_space)))
        })
        .expect("some owner has a successor gap");
    let old_holder = c.net().alive_successors(victim, 1)[0];
    let others: Vec<ServerId> = c
        .server_ids()
        .into_iter()
        .filter(|&id| id != victim && id != old_holder)
        .chain(std::iter::once(join_id))
        .collect();
    let islands = [vec![victim, old_holder], others];
    c.partition_network(&islands);
    c.join_server(join_id).unwrap();
    let report = c.fail_server(victim).unwrap();
    assert!(report.groups_deferred > 0, "setup must defer: {report:?}");
    let deferred = report.groups_deferred as u64;

    // Flap: heal and immediately re-sever (no load check in between) —
    // the retry window never opens, nothing changes hands.
    let flap_islands = [islands[0].clone(), islands[1].clone()];
    for _ in 0..4 {
        c.heal_partition();
        c.partition_network(&flap_islands);
    }
    assert_eq!(c.pending_recoveries(), report.groups_deferred);
    c.verify_consistency();

    // Flap *across* retry windows: each severed check blocks, each
    // healed moment is immediately re-cut before the next check runs.
    for _ in 0..2 {
        c.run_load_check().unwrap();
        assert_eq!(c.pending_recoveries(), report.groups_deferred);
        c.heal_partition();
        c.partition_network(&flap_islands);
    }
    let (retries, blocked) = c.recovery_retry_counters();
    assert_eq!((retries, blocked), (2 * deferred, 2 * deferred));
    c.verify_consistency();

    // Final heal: the very next check drains every pending entry.
    c.heal_partition();
    let check = c.run_load_check().unwrap();
    assert_eq!(check.recoveries_completed, deferred);
    assert_eq!(check.recoveries_lost, 0);
    assert_eq!(
        c.pending_recoveries(),
        0,
        "flapping must not strand entries"
    );
    let (retries, blocked) = c.recovery_retry_counters();
    assert_eq!(
        retries,
        blocked + check.recoveries_completed + check.recoveries_lost,
        "retry conservation across flaps"
    );
    assert_eq!(
        c.telemetry()
            .counter_value("recovery.deferred_max_wait_checks"),
        Some(2),
        "two blocked checks is the longest any entry waited"
    );
    assert_eq!(c.recovery_oracle_reads(), 0);
    c.verify_consistency();
    assert!(c.global_cover().is_partition());
    assert_full_oracle_agreement(&mut c);
}

/// `fail_servers` input validation is part of the public contract.
#[test]
fn burst_api_rejects_degenerate_input() {
    let mut c = lan_cluster(1, 2);
    assert!(matches!(
        c.fail_servers(&[]),
        Err(ClashError::InvalidConfig { .. })
    ));
    let ids = c.server_ids();
    assert!(matches!(
        c.fail_servers(&ids),
        Err(ClashError::InvalidConfig { .. })
    ));
    assert_eq!(c.server_count(), 8, "rejected calls must not mutate");
    c.verify_consistency();
}
