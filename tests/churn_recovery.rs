//! Churn stress: membership changes *while* the workload runs and the
//! protocol keeps every invariant. (The paper fixes membership during
//! its experiments; this exercises the crash-recovery extension of
//! DESIGN.md §7 and the live join/drain subsystem under sustained load.)

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_keyspace::key::Key;
use clash_simkernel::rng::DetRng;

fn key(bits: u64) -> Key {
    Key::from_bits_truncated(bits, ClashConfig::small_test().key_width)
}

/// The suite honors `CLASH_REPLICATION` (CI runs it at 0 and 2): every
/// scenario here must hold both with the oracle crutch and with real
/// successor-list replication.
fn test_config() -> ClashConfig {
    ClashConfig::small_test().with_replication(ClashConfig::replication_factor_from_env())
}

#[test]
fn interleaved_crashes_and_workload() {
    let mut cluster = ClashCluster::new(test_config(), 20, 77).unwrap();
    let mut rng = DetRng::new(42);
    let mut next_source = 0u64;
    let mut live: Vec<u64> = Vec::new();

    for round in 0..12u32 {
        // Workload burst: attach skewed sources, churn some keys.
        for _ in 0..25 {
            let bits = if rng.chance(0.6) {
                0b1010_0000 | rng.uniform_u64(32)
            } else {
                rng.uniform_u64(256)
            };
            cluster.attach_source(next_source, key(bits), 2.0).unwrap();
            live.push(next_source);
            next_source += 1;
        }
        for _ in 0..10 {
            if !live.is_empty() {
                let idx = rng.uniform_index(live.len());
                cluster
                    .move_source(live[idx], key(rng.uniform_u64(256)))
                    .unwrap();
            }
        }
        cluster.run_load_check().unwrap();

        // Crash a random server every other round (down to a floor of 6).
        if round % 2 == 1 && cluster.server_count() > 6 {
            let ids = cluster.server_ids();
            let victim = ids[rng.uniform_index(ids.len())];
            let report = cluster.fail_server(victim).unwrap();
            // Recovery bookkeeping is internally consistent.
            assert!(report.groups_reassigned <= 64);
            cluster.verify_consistency();
            assert!(cluster.global_cover().is_partition());
        }

        // Spot-check lookups against the oracle every round.
        for _ in 0..20 {
            let k = key(rng.uniform_u64(256));
            let placement = cluster.locate(k).unwrap();
            let (oracle_server, oracle_group) = cluster.oracle_locate(k).unwrap();
            assert_eq!(placement.server, oracle_server);
            assert_eq!(placement.group, oracle_group);
            assert!(placement.probes <= 5);
        }
    }
    // Six crashes happened; the fleet shrank but kept serving.
    assert_eq!(cluster.server_count(), 14);
    assert_eq!(cluster.source_count(), 12 * 25);
    cluster.verify_consistency();
}

#[test]
fn crash_during_deep_split_state() {
    // Crash the server holding the deepest group while the tree is deep,
    // then verify merges still work afterwards (pointers were repaired).
    let mut cluster = ClashCluster::new(
        ClashConfig {
            capacity: 60.0,
            ..test_config()
        },
        10,
        5,
    )
    .unwrap();
    for i in 0..120u64 {
        cluster
            .attach_source(i, key(0b0110_0000 | (i % 32)), 2.0)
            .unwrap();
    }
    for _ in 0..4 {
        cluster.run_load_check().unwrap();
    }
    let (_, _, deep) = cluster.depth_stats().unwrap();
    assert!(deep > 4);

    // Find the server owning the deepest group and kill it.
    let deepest_owner = cluster
        .server_ids()
        .into_iter()
        .max_by_key(|&id| {
            cluster
                .server(id)
                .unwrap()
                .depth_stats()
                .map_or(0, |(_, _, max)| max)
        })
        .unwrap();
    cluster.fail_server(deepest_owner).unwrap();
    cluster.verify_consistency();

    // Cool the system; consolidation must still make progress even though
    // some subtrees were orphaned into roots by the crash.
    for i in 0..120u64 {
        cluster.detach_source(i).unwrap();
    }
    let depth_before = cluster.depth_stats().unwrap().2;
    for _ in 0..10 {
        cluster.run_load_check().unwrap();
    }
    let depth_after = cluster.depth_stats().unwrap().2;
    assert!(
        depth_after <= depth_before,
        "consolidation regressed: {depth_before} -> {depth_after}"
    );
    assert!(cluster.global_cover().is_partition());
}

#[test]
fn elastic_capacity_under_sustained_load() {
    // The utility-computing loop: scale out under pressure (joins), scale
    // back in as demand fades (graceful drains), with crashes sprinkled
    // in — all while the workload keeps moving keys.
    let mut cluster = ClashCluster::new(test_config(), 8, 99).unwrap();
    let mut rng = DetRng::new(7);
    let mut next_source = 0u64;

    // Scale-out phase: heat the cluster, then add capacity live.
    for _ in 0..80 {
        let bits = 0b0100_0000 | rng.uniform_u64(64);
        cluster.attach_source(next_source, key(bits), 2.0).unwrap();
        next_source += 1;
    }
    cluster.run_load_check().unwrap();
    for _ in 0..4 {
        let report = cluster.join_random_server().unwrap();
        assert!(report.stabilization_rounds > 0);
        cluster.verify_consistency();
    }
    assert_eq!(cluster.server_count(), 12);
    // One crash amid the growth; the fleet absorbs it.
    let ids = cluster.server_ids();
    cluster
        .fail_server(ids[rng.uniform_index(ids.len())])
        .unwrap();

    // Keys keep churning across the membership changes.
    for s in 0..next_source {
        if rng.chance(0.3) {
            cluster.move_source(s, key(rng.uniform_u64(256))).unwrap();
        }
    }
    cluster.run_load_check().unwrap();

    // Scale-in phase: demand fades, drain nodes back out.
    for s in 0..60 {
        cluster.detach_source(s).unwrap();
    }
    while cluster.server_count() > 6 {
        let ids = cluster.server_ids();
        let victim = ids[rng.uniform_index(ids.len())];
        cluster.leave_server(victim).unwrap();
        cluster.verify_consistency();
        assert!(cluster.global_cover().is_partition());
    }
    for _ in 0..8 {
        cluster.run_load_check().unwrap();
    }

    // Full service: every key resolves correctly and cheaply.
    for bits in 0..=255u64 {
        let k = key(bits);
        let placement = cluster.locate(k).unwrap();
        let (oracle_server, oracle_group) = cluster.oracle_locate(k).unwrap();
        assert_eq!(placement.server, oracle_server);
        assert_eq!(placement.group, oracle_group);
        assert!(placement.probes <= 5);
    }
    // Drains and crashes lost no attached state.
    assert_eq!(cluster.source_count() as u64, next_source - 60);
    let stats = cluster.message_stats();
    assert_eq!(stats.joins, 4);
    assert!(stats.leaves >= 5);
    assert!(stats.handoff_messages > 0);
}

#[test]
fn sequential_crashes_preserve_all_data_plane_state() {
    let mut cluster = ClashCluster::new(test_config(), 12, 123).unwrap();
    for i in 0..60u64 {
        cluster.attach_source(i, key(i * 4), 1.5).unwrap();
    }
    for q in 0..30u64 {
        cluster.attach_query(1000 + q, key(q * 8)).unwrap();
    }
    let total_rate = 60.0 * 1.5;
    for round in 0..5 {
        let ids = cluster.server_ids();
        cluster.fail_server(ids[round % ids.len()]).unwrap();
        // No rate and no query may be lost by a crash (state transfer is
        // synchronous in the harness; durability is the DHT layer's job).
        let rate: f64 = cluster.server_loads().iter().map(|&(_, l)| l).sum();
        let queries: u64 = cluster
            .server_ids()
            .iter()
            .flat_map(|&id| cluster.server(id).unwrap().table().active_loads())
            .map(|l| l.queries)
            .sum();
        // Load includes the query-count term; compare rates via ledger by
        // subtracting the query contribution is fiddly — instead assert
        // both components independently.
        assert_eq!(queries, 30, "queries lost in round {round}");
        assert!(
            rate >= total_rate,
            "rate lost in round {round}: {rate} < {total_rate}"
        );
        assert_eq!(cluster.query_count(), 30);
        assert_eq!(cluster.source_count(), 60);
    }
}
