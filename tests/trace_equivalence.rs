//! Differential pins for the flight recorder (PR: observability).
//!
//! The contract the tracing tentpole lives or dies by: **recording is
//! observation, not behaviour**. Attaching any trace sink — the bounded
//! ring or the unbounded full-export buffer — must leave the protocol's
//! decisions bit-for-bit identical to the untraced run, across shard
//! counts and replication factors, and must draw *zero* RNG of its own.
//!
//! Each pin runs the same churn+crash scenario three ways (tracing off,
//! ring, full) and compares `RunResult::deterministic_fingerprint()`
//! strings plus the cluster's exact `DetRng` draw count.

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_obs::{TraceEventKind, TraceMode};
use clash_sim::driver::{RunResult, SimDriver};
use clash_simkernel::time::SimDuration;
use clash_transport::{LinkPolicy, LinkTransport, Transport};
use clash_workload::churn::ChurnSpec;
use clash_workload::scenario::ScenarioSpec;

/// A scenario dense in traceable moments: splits under skew, sustained
/// membership churn, and single crashes driving the recovery paths.
fn spec() -> ScenarioSpec {
    ScenarioSpec {
        servers: 16,
        sources: 300,
        query_clients: 20,
        load_check_period: SimDuration::from_secs(60),
        sample_period: SimDuration::from_secs(60),
        ..ScenarioSpec::paper().with_phase_duration(SimDuration::from_mins(5))
    }
    .with_churn(
        ChurnSpec::sustained(SimDuration::from_mins(2), SimDuration::from_mins(3), 8, 64)
            .with_crashes(SimDuration::from_mins(4)),
    )
}

fn run(replication: usize, shards: u32, trace: TraceMode) -> (RunResult, ClashCluster) {
    let config = ClashConfig {
        capacity: 60.0,
        ..ClashConfig::paper()
    }
    .with_replication(replication)
    .with_shards(shards);
    let spec = spec();
    let transport: Box<dyn Transport> = Box::new(LinkTransport::new(LinkPolicy::wan(), spec.seed));
    let mut driver =
        SimDriver::with_transport(config, spec, "CLASH/trace-equiv".to_owned(), transport).unwrap();
    driver.cluster_mut().set_trace_sink(trace.make_sink());
    let (result, cluster) = driver.run_with_cluster().unwrap();
    cluster.verify_consistency();
    (result, cluster)
}

/// Off vs ring vs full: identical fingerprints and identical RNG draw
/// counts, for the sequential and the sharded locate path, with and
/// without replication.
#[test]
fn tracing_mode_never_changes_the_run() {
    for replication in [0usize, 2] {
        for shards in [0u32, 4] {
            let (off, off_cluster) = run(replication, shards, TraceMode::Off);
            let (ring, ring_cluster) = run(replication, shards, TraceMode::Ring(256));
            let (full, full_cluster) = run(replication, shards, TraceMode::Full);
            let label = format!("r={replication} shards={shards}");
            assert_eq!(
                off.deterministic_fingerprint(),
                ring.deterministic_fingerprint(),
                "{label}: ring tracing changed the run"
            );
            assert_eq!(
                off.deterministic_fingerprint(),
                full.deterministic_fingerprint(),
                "{label}: full tracing changed the run"
            );
            // Tracing draws no RNG: the protocol stream's draw count is
            // the strictest possible "no hidden behaviour" witness.
            assert_eq!(
                off_cluster.rng_draws(),
                ring_cluster.rng_draws(),
                "{label}: ring tracing drew RNG"
            );
            assert_eq!(
                off_cluster.rng_draws(),
                full_cluster.rng_draws(),
                "{label}: full tracing drew RNG"
            );
        }
    }
}

/// The full sink actually captures the run: every traceable moment class
/// this scenario exercises shows up, stamped with non-decreasing virtual
/// time and strictly increasing sequence numbers.
#[test]
fn full_trace_captures_the_expected_event_classes() {
    let (result, mut cluster) = run(2, 2, TraceMode::Full);
    let events = cluster.take_trace_events();
    assert!(
        events.len() > 1000,
        "a 15-minute churn run must record thousands of events, got {}",
        events.len()
    );
    let mut last_seq = None;
    let mut last_at = None;
    for ev in &events {
        if let Some(prev) = last_seq {
            assert!(ev.seq > prev, "sequence numbers must strictly increase");
        }
        if let Some(prev) = last_at {
            assert!(ev.at >= prev, "virtual timestamps must be monotone");
        }
        last_seq = Some(ev.seq);
        last_at = Some(ev.at);
    }
    let has = |pred: &dyn Fn(&TraceEventKind) -> bool| events.iter().any(|e| pred(&e.kind));
    assert!(
        has(&|k| matches!(k, TraceEventKind::LocateProbe { .. })),
        "locate probes must be traced"
    );
    assert!(
        has(&|k| matches!(k, TraceEventKind::Split { .. })),
        "splits must be traced (run reported {})",
        result.splits
    );
    assert!(
        has(&|k| matches!(k, TraceEventKind::FlushBegin { .. }))
            && has(&|k| matches!(k, TraceEventKind::FlushEnd { .. })),
        "flush windows must be traced"
    );
    assert!(
        has(&|k| matches!(k, TraceEventKind::LoadCheckBegin { .. }))
            && has(&|k| matches!(k, TraceEventKind::LoadCheckEnd { .. })),
        "load checks must be traced"
    );
    assert!(
        has(&|k| matches!(k, TraceEventKind::ServerJoined { .. }))
            && has(&|k| matches!(k, TraceEventKind::ServerLeft { .. }))
            && has(&|k| matches!(k, TraceEventKind::ServerCrashed { .. })),
        "membership events must be traced"
    );
    assert!(
        has(&|k| matches!(
            k,
            TraceEventKind::ReplicaPromoted { .. }
                | TraceEventKind::RecoveryDeferred { .. }
                | TraceEventKind::RecoveryLost { .. }
        )),
        "crashes under r=2 must leave a recovery timeline"
    );
    // The whole capture exports as valid Chrome trace JSON.
    let json = clash_obs::to_chrome_json(&events);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"name\":\"locate_probe\""));
}

/// The ring keeps only the newest events and reports what it shed; the
/// tail it retains matches the end of the full capture.
#[test]
fn ring_sink_retains_the_newest_tail() {
    let (_, mut full_cluster) = run(0, 0, TraceMode::Full);
    let full = full_cluster.take_trace_events();
    // Both sides of the panic dump's 64-event window: a ring smaller
    // than the window (the case the capacity accessor exists for) and
    // one larger than it.
    for cap in [16usize, 128] {
        let (_, mut ring_cluster) = run(0, 0, TraceMode::Ring(cap));
        let kept = ring_cluster.take_trace_events();
        assert_eq!(kept.len(), cap.min(full.len()), "cap={cap}");
        // Conservation: every emitted event is either kept or counted
        // as shed — nothing vanishes unaccounted.
        assert_eq!(
            ring_cluster.trace_dropped() + kept.len() as u64,
            full.len() as u64,
            "ring must account every shed event (cap={cap})"
        );
        let tail = &full[full.len() - kept.len()..];
        assert_eq!(kept, tail, "ring tail must equal the full capture's end");
    }
}

/// The unified telemetry registry agrees with the legacy per-struct
/// counters it replaces, for both the cluster and driver namespaces.
#[test]
fn telemetry_registry_matches_legacy_counters() {
    let (result, cluster) = run(2, 2, TraceMode::Off);
    let t = result.telemetry(&cluster);
    assert_eq!(
        t.counter_value("cluster.messages.total"),
        Some(result.final_messages.total_messages()),
        "message totals must agree"
    );
    assert_eq!(
        t.counter_value("driver.load_checks"),
        Some(result.load_checks)
    );
    assert_eq!(t.counter_value("driver.splits"), Some(result.splits));
    assert_eq!(
        t.counter_value("cluster.rng.draws"),
        Some(cluster.rng_draws())
    );
    // The render is non-empty, deterministic-ordered, and covers both
    // namespaces.
    let rendered = t.render();
    assert!(rendered.contains("cluster.messages."));
    assert!(rendered.contains("driver.check_phase.splits_ms"));
    let keys: Vec<&str> = t.iter().map(|(k, _)| k).collect();
    let sorted = {
        let mut s = keys.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(keys, sorted, "telemetry iterates in deterministic order");
}
