//! Differential pins for the dirty-tracked load-check optimization
//! (PR: hot-path overhaul).
//!
//! The optimization replaced the per-period O(cluster) sweeps (report
//! delivery, split/merge candidate scans, replica re-ensure) with
//! incrementally-maintained candidate sets. The invariant is absolute:
//! **zero protocol-behavior change** — same seed ⇒ identical `RunResult`
//! and `MessageStats`, bit for bit, at any replication factor, with or
//! without churn.
//!
//! `ClashCluster::set_full_scan_load_checks(true)` re-enables the
//! historical semantics (every check reclassifies every server and
//! full-syncs every replica group from scratch); these tests run every
//! scenario both ways and require equality on everything observable.

use clash_core::config::ClashConfig;
use clash_sim::driver::{RunResult, SimDriver};
use clash_simkernel::time::SimDuration;
use clash_transport::{LinkPolicy, LinkTransport, Transport};
use clash_workload::churn::ChurnSpec;
use clash_workload::scenario::ScenarioSpec;

fn pin_spec() -> ScenarioSpec {
    ScenarioSpec {
        servers: 16,
        sources: 300,
        query_clients: 20,
        load_check_period: SimDuration::from_secs(60),
        sample_period: SimDuration::from_secs(60),
        ..ScenarioSpec::paper().with_phase_duration(SimDuration::from_mins(5))
    }
}

fn churn_spec() -> ScenarioSpec {
    pin_spec().with_churn(
        ChurnSpec::sustained(SimDuration::from_mins(2), SimDuration::from_mins(3), 8, 64)
            .with_crashes(SimDuration::from_mins(4))
            .with_crash_bursts(SimDuration::from_mins(6), 3),
    )
}

fn run(spec: ScenarioSpec, replication: usize, full_scan: bool) -> RunResult {
    let config = ClashConfig {
        capacity: 60.0,
        ..ClashConfig::paper()
    }
    .with_replication(replication);
    let transport: Box<dyn Transport> = Box::new(LinkTransport::new(LinkPolicy::wan(), spec.seed));
    let mut driver =
        SimDriver::with_transport(config, spec, "CLASH/equiv".to_owned(), transport).unwrap();
    driver.cluster_mut().set_full_scan_load_checks(full_scan);
    let (result, cluster) = driver.run_with_cluster().unwrap();
    cluster.verify_consistency();
    result
}

fn assert_equal_runs(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(
        a.final_messages, b.final_messages,
        "{label}: MessageStats diverged between dirty-tracked and full-scan checks"
    );
    assert_eq!(a.samples, b.samples, "{label}: sampled series diverged");
    assert_eq!(a.events, b.events, "{label}: event counts diverged");
    assert_eq!(
        (a.splits, a.merges, a.joins, a.leaves, a.crashes),
        (b.splits, b.merges, b.joins, b.leaves, b.crashes),
        "{label}: action totals diverged"
    );
    assert_eq!(a.recovery, b.recovery, "{label}: recovery totals diverged");
}

#[test]
fn dirty_tracking_matches_full_scan_on_pin_scenario() {
    for replication in [0usize, 2] {
        let dirty = run(pin_spec(), replication, false);
        let full = run(pin_spec(), replication, true);
        assert_equal_runs(&dirty, &full, &format!("pin r={replication}"));
    }
}

#[test]
fn dirty_tracking_matches_full_scan_under_churn_and_bursts() {
    // Joins, drains, single crashes and correlated bursts interleave
    // with the load checks — every membership path feeds the candidate
    // indices and the replica worklist, and all of them must agree with
    // the from-scratch sweep.
    for replication in [0usize, 2] {
        let dirty = run(churn_spec(), replication, false);
        let full = run(churn_spec(), replication, true);
        assert_equal_runs(&dirty, &full, &format!("churn r={replication}"));
        assert!(dirty.crashes > 0, "churn scenario must crash servers");
        assert!(dirty.joins > 0, "churn scenario must join servers");
    }
}

#[test]
fn dirty_tracking_matches_full_scan_across_seeds() {
    // A small seed sweep over the churn scenario at r = 2 — different
    // membership interleavings exercise different mark-dirty paths.
    for seed in [1u64, 42, 0xBEEF] {
        let mut spec = churn_spec();
        spec.seed = seed;
        let dirty = run(spec.clone(), 2, false);
        let full = run(spec, 2, true);
        assert_equal_runs(&dirty, &full, &format!("seed {seed}"));
    }
}
