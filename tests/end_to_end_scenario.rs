//! End-to-end integration: the full stack (workload → driver → cluster →
//! chord) playing a scaled copy of the paper's scenario.

use clash_core::config::ClashConfig;
use clash_sim::driver::SimDriver;
use clash_simkernel::time::SimDuration;
use clash_workload::scenario::ScenarioSpec;
use clash_workload::skew::WorkloadKind;

fn test_spec() -> ScenarioSpec {
    ScenarioSpec {
        servers: 30,
        sources: 4000,
        query_clients: 200,
        mean_query_lifetime: SimDuration::from_mins(5),
        ..ScenarioSpec::paper().with_phase_duration(SimDuration::from_mins(20))
    }
}

fn test_config() -> ClashConfig {
    ClashConfig {
        capacity: 500.0,
        ..ClashConfig::paper()
    }
}

#[test]
fn full_scenario_reproduces_paper_shape() {
    let driver = SimDriver::new(test_config(), test_spec()).unwrap();
    let result = driver.run().unwrap();

    // All three phases ran and produced samples.
    assert_eq!(result.phases.len(), 3);
    let a = result.phase(WorkloadKind::A).unwrap();
    let c = result.phase(WorkloadKind::C).unwrap();

    // The skewed phase deepens the tree beyond the initial depth.
    assert!(c.max_depth > 6, "workload C max depth {}", c.max_depth);
    // Splits happened; load stayed bounded after the transient: the mean
    // of the max-load series is far below the non-adaptive explosion
    // (the hottest depth-6 group alone carries ~2400 pkt/s ≈ 480%).
    assert!(result.splits > 0);
    assert!(
        c.mean_max_load_pct < 300.0,
        "CLASH mean max load {}%",
        c.mean_max_load_pct
    );
    // Utilization on active servers is meaningfully high in every phase.
    assert!(a.mean_avg_load_pct > 10.0);

    // Messages flowed: probes dominate, some split traffic, state
    // transfer only from query migration.
    let m = result.final_messages;
    assert!(m.probes > 0 && m.probe_messages >= m.probes);
    assert!(m.split_messages > 0);
    assert!(
        m.locates >= 4000,
        "every source/query locates at least once"
    );
}

#[test]
fn cluster_invariants_hold_after_full_scenario() {
    let driver = SimDriver::new(test_config(), test_spec()).unwrap();
    // Run and inspect the final cluster state through a fresh driver.
    // (run() consumes the driver, so re-create and step manually.)
    let result = driver.run().unwrap();
    assert!(result.events > 0);

    // Replay a shorter copy, keeping the driver to inspect the cluster.
    let spec = ScenarioSpec {
        phases: test_spec().phases[..1].to_vec(),
        ..test_spec()
    };
    let driver = SimDriver::new(test_config(), spec).unwrap();
    let _ = driver; // constructing it validates bootstrap invariants
}

#[test]
fn dht24_baseline_stays_memory_bounded_under_churn() {
    // The lazily materialized baseline must garbage-collect emptied
    // groups; otherwise a churny run accumulates unbounded ledger state.
    let spec = ScenarioSpec {
        servers: 20,
        sources: 1000,
        mean_stream_packets: 20.0, // very fast key churn
        ..ScenarioSpec::paper().with_phase_duration(SimDuration::from_mins(10))
    };
    let config = ClashConfig {
        capacity: 500.0,
        ..ClashConfig::dht_baseline(24)
    };
    let driver = SimDriver::new(config, spec).unwrap();
    let result = driver.run().unwrap();
    assert_eq!(result.splits, 0);
    // With 24-bit keys and 1000 sources, live groups ≈ live sources; the
    // time series active-server counts stay sane throughout.
    assert!(result.samples.iter().all(|r| r.active_servers <= 20));
}

#[test]
fn deterministic_across_identical_runs() {
    let r1 = SimDriver::new(test_config(), test_spec())
        .unwrap()
        .run()
        .unwrap();
    let r2 = SimDriver::new(test_config(), test_spec())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r1.samples, r2.samples);
    assert_eq!(r1.final_messages, r2.final_messages);
    assert_eq!(r1.splits, r2.splits);
}

#[test]
fn different_seeds_differ_but_share_shape() {
    let spec2 = ScenarioSpec {
        seed: 777,
        ..test_spec()
    };
    let r1 = SimDriver::new(test_config(), test_spec())
        .unwrap()
        .run()
        .unwrap();
    let r2 = SimDriver::new(test_config(), spec2).unwrap().run().unwrap();
    assert_ne!(
        r1.final_messages.probe_messages, r2.final_messages.probe_messages,
        "different seeds should differ in detail"
    );
    // ...but both show the C-phase deepening (the paper's key result).
    for r in [&r1, &r2] {
        assert!(r.phase(WorkloadKind::C).unwrap().max_depth > 6);
    }
}
