//! Integration across the application layers: quad-tree key generation →
//! CLASH placement → continuous-query matching with state migration on
//! splits (the Mobiscope pipeline of the paper's §1/§6).

use std::collections::BTreeMap;

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_core::ServerId;
use clash_keyspace::keygen::{GridPoint, KeyGen, QuadTreeEncoder};
use clash_keyspace::prefix::Prefix;
use clash_simkernel::rng::DetRng;
use clash_streamquery::engine::QueryEngine;
use clash_streamquery::query::ContinuousQuery;

/// A miniature distributed deployment: one query engine per server, kept
/// in sync with CLASH group placement by migrating engine state on every
/// split/merge the load checks perform.
struct Deployment {
    cluster: ClashCluster,
    engines: BTreeMap<u64, QueryEngine>,
}

impl Deployment {
    fn new(config: ClashConfig, servers: usize, seed: u64) -> Self {
        let cluster = ClashCluster::new(config, servers, seed).unwrap();
        let engines = cluster
            .server_ids()
            .into_iter()
            .map(|id| (id.value(), QueryEngine::new(config.key_width)))
            .collect();
        Deployment { cluster, engines }
    }

    fn register_query(&mut self, id: u64, region: Prefix) {
        let key = region.virtual_key();
        let placement = self.cluster.attach_query(id, key).unwrap();
        self.engines
            .get_mut(&placement.server.value())
            .unwrap()
            .register(ContinuousQuery::new(id, region));
    }

    fn run_load_check(&mut self) {
        let report = self.cluster.run_load_check().unwrap();
        // Migrate engine state for every split: queries resident in the
        // right child move to its new server.
        for split in &report.splits {
            let (_, right) = split.group.split().unwrap();
            // The split may have cascaded (self-maps); consult the oracle
            // for every moved group owner instead of assuming one hop.
            self.migrate_group(right, split.right_child_server);
        }
        for merge in &report.merges {
            let (_, right) = merge.parent.split().unwrap();
            self.migrate_group(right, merge.server);
        }
    }

    /// Re-homes query state when `group` moves to `target`:
    ///
    /// * queries whose region lies *within* the group move outright;
    /// * queries whose region strictly *contains* the group are
    ///   **replicated** — the coverage cost the paper attributes to
    ///   coarse queries over split regions (§1, §7): the original copy
    ///   keeps serving the siblings, `target` gets its own copy.
    fn migrate_group(&mut self, group: Prefix, target: ServerId) {
        let mut to_target: Vec<ContinuousQuery> = Vec::new();
        for engine in self.engines.values_mut() {
            // Move queries placed (by identifier key) inside the group.
            for q in engine.extract_group(group) {
                if group.is_prefix_of(q.region()) {
                    to_target.push(q);
                } else {
                    // Region is an ancestor: keep serving locally too.
                    engine.register(q);
                    to_target.push(q);
                }
            }
        }
        // Replicate ancestor-region queries whose copy lives elsewhere.
        let mut replicas: Vec<ContinuousQuery> = Vec::new();
        for engine in self.engines.values() {
            for q in engine.index().iter() {
                if q.region().is_prefix_of(group) && q.region() != group {
                    replicas.push(*q);
                }
            }
        }
        let target_engine = self.engines.get_mut(&target.value()).unwrap();
        for q in to_target.into_iter().chain(replicas) {
            if !target_engine.contains(q.region(), q.id()) {
                target_engine.register(q);
            }
        }
    }

    /// Routes a packet via CLASH and matches it on the owning server's
    /// engine.
    fn deliver(&mut self, key: clash_keyspace::key::Key) -> Vec<u64> {
        let placement = self.cluster.locate(key).unwrap();
        self.engines
            .get_mut(&placement.server.value())
            .unwrap()
            .ingest(key)
    }
}

#[test]
fn query_state_follows_groups_through_splits() {
    let encoder = QuadTreeEncoder::new(4).unwrap(); // 8-bit keys
    let config = ClashConfig {
        capacity: 60.0,
        ..ClashConfig::small_test()
    };
    let mut dep = Deployment::new(config, 10, 17);
    let mut rng = DetRng::new(3);

    // Dispatchers watch each quadrant at depth 2 plus two fine cells.
    for (i, pattern) in (0..4u64).enumerate() {
        let region = Prefix::new(pattern, 2, encoder.key_width()).unwrap();
        dep.register_query(i as u64, region);
    }
    dep.register_query(100, Prefix::parse("110101*", 8).unwrap());
    dep.register_query(101, Prefix::parse("1101*", 8).unwrap());

    // Heat the south-east: 120 vehicles in cells whose keys start 11….
    for v in 0..120u64 {
        let cell = GridPoint::new(8 + rng.uniform_u64(8), 8 + rng.uniform_u64(8));
        let key = encoder.encode(&cell).unwrap();
        dep.cluster.attach_source(1000 + v, key, 2.0).unwrap();
    }
    dep.run_load_check();
    let (_, _, dmax) = dep.cluster.depth_stats().unwrap();
    assert!(dmax > 2, "hot quadrant must split (depth {dmax})");

    // Every packet still reaches exactly the queries covering it, even
    // though the hot quadrant's queries migrated across servers.
    let mut total_deliveries = 0;
    for v in 0..120u64 {
        let cell = GridPoint::new(8 + rng.uniform_u64(8), 8 + rng.uniform_u64(8));
        let key = encoder.encode(&cell).unwrap();
        let hits = dep.deliver(key);
        // The south-east quadrant query (pattern 11, id 3) must match.
        assert!(
            hits.contains(&3),
            "packet at {cell:?} missed the SE dispatcher"
        );
        // Region membership matches the query definitions exactly.
        if Prefix::parse("1101*", 8).unwrap().contains(key) {
            assert!(hits.contains(&101));
        }
        if Prefix::parse("110101*", 8).unwrap().contains(key) {
            assert!(hits.contains(&100));
        }
        // No duplicate deliveries for one packet.
        let mut unique = hits.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), hits.len(), "duplicate delivery at {cell:?}");
        total_deliveries += hits.len();
        let _ = v;
    }
    assert!(total_deliveries >= 120, "every packet matches ≥ 1 query");

    // Replication happened: the split SE quadrant forces extra copies of
    // the coarse queries (the paper's coverage cost), so the resident
    // count exceeds the 6 registrations.
    let resident: usize = dep.engines.values().map(|e| e.query_count()).sum();
    assert!(resident > 6, "expected replicas, resident = {resident}");
}

#[test]
fn locality_keeps_neighbours_together_until_load_separates_them() {
    let encoder = QuadTreeEncoder::new(4).unwrap();
    let config = ClashConfig::small_test();
    let mut cluster = ClashCluster::new(config, 10, 5).unwrap();

    // With no load, adjacent cells in one quadrant share one server — the
    // content-sensitive placement of §1.
    let keys: Vec<_> = (0..4)
        .map(|i| encoder.encode(&GridPoint::new(i, 0)).unwrap())
        .collect();
    let servers: Vec<_> = keys
        .iter()
        .map(|&k| cluster.oracle_locate(k).unwrap().0)
        .collect();
    assert!(
        servers.windows(2).all(|w| w[0] == w[1]),
        "cold neighbours should share a server: {servers:?}"
    );

    // Heat the quadrant: neighbours may now spread across servers, but
    // only then (minimal dispersal).
    let group_count_before = cluster.global_cover().len();
    for v in 0..100u64 {
        let cell = GridPoint::new(v % 8, (v / 8) % 8);
        cluster
            .attach_source(v, encoder.encode(&cell).unwrap(), 2.0)
            .unwrap();
    }
    cluster.run_load_check().unwrap();
    assert!(cluster.global_cover().len() > group_count_before);
    cluster.verify_consistency();
}
