//! Integration tests for the virtual-time transport (PR: clash-transport).
//!
//! Two contracts are pinned here:
//!
//! 1. **Equivalence** — a cluster over the default [`InstantTransport`]
//!    reproduces the *exact* `MessageStats` the pre-transport direct-call
//!    code produced on the Figure-4 scenario (constants captured from the
//!    seed code before the transport existed). Any drift means the
//!    transport leaked into protocol behavior.
//! 2. **Determinism** — same seed + same `LinkPolicy` ⇒ identical
//!    `RunResult`, sample-for-sample, including transport stats.

use clash_core::cluster::MessageStats;
use clash_core::config::ClashConfig;
use clash_sim::driver::SimDriver;
use clash_simkernel::time::SimDuration;
use clash_transport::{LinkPolicy, LinkTransport};
use clash_workload::scenario::ScenarioSpec;

/// The Figure-4-shaped scenario the equivalence constants were captured
/// on: 16 servers, 300 sources, 20 query clients, 5-minute A/B/C phases,
/// 60-second load checks and samples, capacity 60.
fn pin_spec() -> ScenarioSpec {
    ScenarioSpec {
        servers: 16,
        sources: 300,
        query_clients: 20,
        load_check_period: SimDuration::from_secs(60),
        sample_period: SimDuration::from_secs(60),
        ..ScenarioSpec::paper().with_phase_duration(SimDuration::from_mins(5))
    }
}

fn pin_config() -> ClashConfig {
    ClashConfig {
        capacity: 60.0,
        ..ClashConfig::paper()
    }
}

/// `MessageStats` of the pre-transport direct-call code on `pin_spec()`,
/// captured verbatim from the seed implementation. The default
/// (instant-transport, replication-factor-0) cluster must reproduce
/// every field bit-for-bit — these are also the pre-*replication*
/// constants: `r = 0` keeps the whole row, `replication_messages`
/// included, identical.
const PINNED: MessageStats = MessageStats {
    probes: 1267,
    probe_messages: 4674,
    locates: 613,
    split_messages: 870,
    merge_messages: 0,
    report_messages: 1248,
    state_transfer_messages: 75,
    redirect_messages: 180,
    splits: 244,
    merges: 0,
    accept_keygroups: 201,
    self_mapped_retries: 43,
    handoff_messages: 0,
    joins: 0,
    leaves: 0,
    replication_messages: 0,
};

#[test]
fn instant_transport_reproduces_direct_call_message_stats() {
    let result = SimDriver::new(pin_config(), pin_spec())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        result.final_messages, PINNED,
        "InstantTransport must be bit-for-bit equivalent to the \
         pre-transport direct-call path"
    );
    assert_eq!(result.samples.len(), 15);
    // The instant transport charges no time: every windowed percentile
    // is exactly zero.
    assert!(result
        .samples
        .iter()
        .all(|r| r.locate_p50_ms == 0.0 && r.locate_p99_ms == 0.0));
}

#[test]
fn same_seed_same_link_policy_same_run_result() {
    let run = || {
        let spec = pin_spec();
        let transport = Box::new(LinkTransport::new(LinkPolicy::lossy_wan(0.05), spec.seed));
        SimDriver::with_transport(pin_config(), spec, "CLASH/faulty".to_owned(), transport)
            .unwrap()
            .run_with_cluster()
            .unwrap()
    };
    let (r1, c1) = run();
    let (r2, c2) = run();
    assert_eq!(r1.samples, r2.samples, "sampled series must be identical");
    assert_eq!(r1.final_messages, r2.final_messages);
    assert_eq!(r1.events, r2.events);
    assert_eq!(
        c1.transport_stats(),
        c2.transport_stats(),
        "every retransmission and latency draw must replay identically"
    );
    // And the lossy run still makes the same protocol decisions as the
    // pinned direct-call path.
    assert_eq!(r1.final_messages, PINNED);
    assert!(c1.transport_stats().retransmissions > 0);
}

#[test]
fn replication_zero_is_bit_for_bit_pre_replication() {
    // The regression pin for the replication subsystem: r = 0 on the
    // instant transport reproduces the pre-replication constants exactly
    // — same struct, same every-field equality, no masked counters.
    let config = pin_config().with_replication(0);
    let result = SimDriver::new(config, pin_spec()).unwrap().run().unwrap();
    assert_eq!(result.final_messages, PINNED);
    assert_eq!(result.recovery, clash_sim::RecoveryTotals::default());
}

#[test]
fn replication_adds_only_replication_messages() {
    // r = 2 on the same pinned scenario: every pre-existing counter stays
    // bit-for-bit at the pinned value (replication draws no randomness
    // and never perturbs protocol decisions); only the new
    // `replication_messages` counter moves.
    let config = pin_config().with_replication(2);
    let result = SimDriver::new(config, pin_spec()).unwrap().run().unwrap();
    // The exact replication traffic is pinned too (captured from the
    // pre-optimization full-sweep code): the dirty-tracked sync must
    // send precisely the seeds and invalidations the per-period full
    // re-ensure sent — no more (spurious re-seeds) and no fewer (missed
    // placements).
    assert_eq!(
        result.final_messages.replication_messages, PINNED_R2_REPLICATION,
        "r = 2 replication traffic drifted"
    );
    let mut masked = result.final_messages;
    masked.replication_messages = 0;
    assert_eq!(
        masked, PINNED,
        "replication must not perturb any other counter"
    );
}

/// Exact `replication_messages` of the `r = 2` pinned run, captured from
/// the pre-optimization code (which re-ensured every group every period;
/// steady-state re-ensures send nothing, so the dirty-tracked sync must
/// reproduce the count bit for bit).
const PINNED_R2_REPLICATION: u64 = 2438;

#[test]
fn transport_seed_changes_latency_without_touching_protocol() {
    let run = |tseed: u64| {
        let spec = pin_spec();
        let transport = Box::new(LinkTransport::new(LinkPolicy::wan(), tseed));
        SimDriver::with_transport(pin_config(), spec, "CLASH/wan".to_owned(), transport)
            .unwrap()
            .run_with_cluster()
            .unwrap()
    };
    let (r1, c1) = run(1);
    let (r2, c2) = run(2);
    assert_eq!(r1.final_messages, r2.final_messages);
    assert_eq!(r1.final_messages, PINNED);
    assert_ne!(
        c1.transport_stats().total_latency_us,
        c2.transport_stats().total_latency_us,
        "different transport seeds must draw different link latencies"
    );
    assert_eq!(
        c1.transport_stats().messages,
        c2.transport_stats().messages,
        "but carry exactly the same envelopes"
    );
}
